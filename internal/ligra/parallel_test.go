package ligra

import (
	"reflect"
	"sort"
	"testing"

	"graphreorder/internal/gen"
	"graphreorder/internal/graph"
	"graphreorder/internal/rng"
)

// testWorkers are the worker counts differential tests sweep. Counts
// beyond GOMAXPROCS still exercise the parallel structure (goroutines
// interleave on fewer cores), which is exactly what the race detector
// needs to see.
var testWorkers = []int{2, 3, 4, 8}

func skewedGraph(t testing.TB, weighted bool) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.MustDataset("sd", gen.Tiny))
	if err != nil {
		t.Fatal(err)
	}
	if !weighted {
		return g
	}
	r := rng.NewStream(0xBEEF, 1)
	edges := g.Edges()
	for i := range edges {
		edges[i].Weight = uint32(1 + r.Intn(64))
	}
	wg, err := graph.BuildWith(edges, graph.BuildOptions{
		NumVertices: g.NumVertices(), Weighted: true, SortNeighbors: false})
	if err != nil {
		t.Fatal(err)
	}
	return wg
}

func sortedMembers(s *VertexSet) []graph.VertexID {
	out := append([]graph.VertexID(nil), s.Members()...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// degreeFns returns side-effect-free EdgeMap callbacks (return-value logic
// only), so sequential and parallel invocations are trivially comparable.
func degreeFns(g *graph.Graph, withCond bool) EdgeMapFns {
	fns := EdgeMapFns{
		// Activate destinations whose ID has a given parity; idempotent and
		// state-free, safe under any concurrency.
		Update: func(_, dst graph.VertexID) bool { return dst%2 == 0 },
	}
	if withCond {
		fns.Cond = func(dst graph.VertexID) bool { return dst%3 != 0 }
	}
	return fns
}

// TestEdgeMapPullParallelBitIdentical is the core determinism claim: pull
// mode partitions destinations into chunks, so the parallel output bitmap
// must equal the sequential one bit for bit, for every worker count, with
// and without Cond.
func TestEdgeMapPullParallelBitIdentical(t *testing.T) {
	g := skewedGraph(t, false)
	for _, withCond := range []bool{false, true} {
		fns := degreeFns(g, withCond)
		frontier := FullVertexSet(g.NumVertices())
		seq := EdgeMap(g, frontier, fns, EdgeMapOpts{Dir: Pull})
		for _, w := range testWorkers {
			parOut := EdgeMap(g, frontier, fns, EdgeMapOpts{Dir: Pull, Workers: w})
			if !parOut.isDense || !seq.isDense {
				t.Fatalf("pull outputs not dense (cond=%v workers=%d)", withCond, w)
			}
			if !seq.dense.Equal(parOut.dense) {
				t.Errorf("cond=%v workers=%d: pull output bitmap differs from sequential", withCond, w)
			}
			if seq.Len() != parOut.Len() {
				t.Errorf("cond=%v workers=%d: Len %d != %d", withCond, w, parOut.Len(), seq.Len())
			}
			parOut.Release()
		}
	}
}

// TestEdgeMapPushParallelSameSet checks the push contract: the output is
// the same *set* as sequential push (member order may differ), across
// sparse/dense inputs, Cond, and weighted updates.
func TestEdgeMapPushParallelSameSet(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := skewedGraph(t, weighted)
		n := g.NumVertices()
		r := rng.NewStream(42, 9)
		var members []graph.VertexID
		seen := make(map[graph.VertexID]bool)
		for len(members) < n/8 {
			v := graph.VertexID(r.Intn(n))
			if !seen[v] {
				seen[v] = true
				members = append(members, v)
			}
		}
		for _, withCond := range []bool{false, true} {
			fns := degreeFns(g, withCond)
			if weighted {
				fns.UpdateWeighted = func(_, dst graph.VertexID, w uint32) bool { return (uint32(dst)+w)%2 == 0 }
				fns.Update = nil
			}
			frontier := NewVertexSet(n, members...)
			want := sortedMembers(EdgeMap(g, frontier, fns, EdgeMapOpts{Dir: Push}))
			for _, w := range testWorkers {
				got := sortedMembers(EdgeMap(g, frontier, fns, EdgeMapOpts{Dir: Push, Workers: w}))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("weighted=%v cond=%v workers=%d: push output set differs (%d vs %d members)",
						weighted, withCond, w, len(got), len(want))
				}
			}
		}
	}
}

// TestEdgeMapParallelBFS runs a full BFS with shared mutable state through
// the parallel engine (claims via the update function's own CAS-free
// idempotent logic would race, so it uses the frontier output only) and
// checks reachability matches the sequential BFS.
func TestEdgeMapParallelBFS(t *testing.T) {
	g := skewedGraph(t, false)
	n := g.NumVertices()
	root := graph.VertexID(0)
	for v := 0; v < n; v++ {
		if g.OutDegree(graph.VertexID(v)) > 5 {
			root = graph.VertexID(v)
			break
		}
	}
	reach := func(workers int) []bool {
		visited := NewBitset(n)
		visited.Set(root)
		frontier := NewVertexSet(n, root)
		for !frontier.Empty() {
			next := EdgeMap(g, frontier, EdgeMapFns{
				// TrySetAtomic both claims and deduplicates: safe at any
				// worker count, and exactly one updater activates each dst.
				Update: func(_, dst graph.VertexID) bool { return visited.TrySetAtomic(dst) },
			}, EdgeMapOpts{Workers: workers})
			frontier.Release()
			frontier = next
		}
		return visited.ToBools(n)
	}
	want := reach(1)
	for _, w := range testWorkers {
		if got := reach(w); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: BFS reachability differs from sequential", w)
		}
	}
}

func TestVertexMapParMatchesSequential(t *testing.T) {
	g := skewedGraph(t, false)
	n := g.NumVertices()
	f := func(v graph.VertexID) bool { return g.OutDegree(v) > 2 }
	t.Run("dense", func(t *testing.T) {
		in := FullVertexSet(n)
		want := VertexMap(in, f)
		for _, w := range testWorkers {
			got := VertexMapPar(in, f, w)
			if !want.dense.Equal(got.dense) || want.Len() != got.Len() {
				t.Errorf("workers=%d: dense VertexMap differs", w)
			}
			got.Release()
		}
	})
	t.Run("sparse", func(t *testing.T) {
		var members []graph.VertexID
		for v := 0; v < n; v += 3 {
			members = append(members, graph.VertexID(v))
		}
		in := NewVertexSet(n, members...)
		want := VertexMap(in, f).Members()
		for _, w := range testWorkers {
			got := VertexMapPar(in, f, w)
			// Sparse parallel VertexMap preserves input order exactly
			// (chunk-ordered concatenation), so no sorting before compare.
			if !reflect.DeepEqual(append([]graph.VertexID(nil), got.Members()...), append([]graph.VertexID(nil), want...)) {
				t.Errorf("workers=%d: sparse VertexMap differs", w)
			}
			got.Release()
		}
	})
}

func TestComputeOutEdgesCachesZero(t *testing.T) {
	// A frontier of sinks has out-edge sum 0; the old "outEdges != 0"
	// sentinel recomputed it on every call. The valid flag must cache it.
	var edges []graph.Edge
	for v := 1; v < 10; v++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: 0})
	}
	g, err := graph.Build(edges)
	if err != nil {
		t.Fatal(err)
	}
	s := NewVertexSet(g.NumVertices(), 0) // vertex 0 is a pure sink
	if got := s.computeOutEdges(g, 1); got != 0 {
		t.Fatalf("sink out-edge sum = %d, want 0", got)
	}
	if !s.outEdgesValid {
		t.Error("zero out-edge sum not cached")
	}
	// Parallel and sequential sums agree on a dense set.
	full := FullVertexSet(g.NumVertices())
	seqSum := full.computeOutEdges(g, 1)
	full2 := FullVertexSet(g.NumVertices())
	if parSum := full2.computeOutEdges(g, 4); parSum != seqSum {
		t.Errorf("parallel out-edge sum %d != sequential %d", parSum, seqSum)
	}
}

func TestSparseHasUsesLookup(t *testing.T) {
	members := make([]graph.VertexID, 0, 100)
	for v := 0; v < 200; v += 2 {
		members = append(members, graph.VertexID(v))
	}
	s := NewVertexSet(1000, members...)
	for v := 0; v < 220; v++ {
		want := v < 200 && v%2 == 0
		if got := s.Has(graph.VertexID(v)); got != want {
			t.Fatalf("Has(%d) = %v, want %v", v, got, want)
		}
	}
	if !s.lookupValid {
		t.Error("large sparse set did not build its lookup bitmap")
	}
	// Small sets stay on the linear path (no bitmap allocation).
	small := NewVertexSet(1000, 1, 2, 3)
	if !small.Has(2) || small.Has(4) {
		t.Error("small-set Has wrong")
	}
	if small.lookupValid {
		t.Error("small sparse set built a lookup bitmap needlessly")
	}
}

// TestEdgeMapSteadyStateZeroAlloc proves the scratch pool claim: once the
// pool is warm, sequential EdgeMap iterations allocate nothing in either
// direction when the caller releases the sets it is done with.
func TestEdgeMapSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; exact counts only hold without -race")
	}
	g := skewedGraph(t, false)
	n := g.NumVertices()
	fns := EdgeMapFns{Update: func(_, dst graph.VertexID) bool { return dst%2 == 0 }}
	frontier := NewVertexSet(n, 1, 2, 3, 4, 5)
	// Warm the pool.
	EdgeMap(g, frontier, fns, EdgeMapOpts{Dir: Push}).Release()
	push := testing.AllocsPerRun(20, func() {
		EdgeMap(g, frontier, fns, EdgeMapOpts{Dir: Push}).Release()
	})
	if push > 0 {
		t.Errorf("steady-state push EdgeMap allocates %.1f objects/op, want 0", push)
	}
	full := FullVertexSet(n)
	EdgeMap(g, full, fns, EdgeMapOpts{Dir: Pull}).Release()
	pull := testing.AllocsPerRun(20, func() {
		EdgeMap(g, full, fns, EdgeMapOpts{Dir: Pull}).Release()
	})
	if pull > 0 {
		t.Errorf("steady-state pull EdgeMap allocates %.1f objects/op, want 0", pull)
	}
}

func TestReleaseReuse(t *testing.T) {
	// A released set must come back from the pool fully reset.
	s := newPooledSparse(10)
	s.sparse = append(s.sparse, 1, 2, 3)
	s.count = 3
	s.computeOutEdgesStub()
	s.Release()
	r := newPooledSparse(20)
	if r.count != 0 || len(r.sparse) != 0 || r.outEdgesValid || r.lookupValid || r.n != 20 {
		t.Errorf("pooled set not reset: %+v", r)
	}
	r.Release()
}

// computeOutEdgesStub marks the cache valid without a graph, emulating a
// set that has been through the direction heuristic.
func (s *VertexSet) computeOutEdgesStub() { s.outEdges = 99; s.outEdgesValid = true }
