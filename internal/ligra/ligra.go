// Package ligra is a compact reimplementation of the Ligra shared-memory
// graph-processing model (Shun & Blelloch, PPoPP'13) that the paper uses
// as its evaluation framework: vertex subsets (frontiers), EdgeMap with
// push- and pull-based traversal and automatic direction switching, and
// VertexMap.
//
// The engine runs sequentially by default and goes multicore when
// EdgeMapOpts.Workers > 1, matching the original Ligra (a parallel
// framework) and the paper's fully-parallelized skew-aware
// implementations (§V-C). The two modes differ in mechanism:
//
//   - Pull mode partitions the destination-vertex range into contiguous
//     chunks aligned to 64 vertices. Every destination is owned by exactly
//     one worker, so update functions that only write dst state need no
//     atomics and the output frontier is bit-identical to the sequential
//     one.
//   - Push mode partitions the sparse frontier across workers; output
//     slots are claimed with compare-and-swap on a word-level bitset, so
//     the output is deduplicated but its member order depends on the
//     interleaving ("frontier-order-independent": the same set, any
//     order). Update functions must be safe for concurrent invocation.
//
// Tracing (EdgeMapOpts.Trace != nil) always falls back to the sequential
// path so cache-simulator traces stay deterministic.
package ligra

import (
	"context"
	"math/bits"

	"graphreorder/internal/csrz"
	"graphreorder/internal/graph"
	"graphreorder/internal/par"
)

// sparseHasThreshold is the sparse-set size above which Has builds a
// lazily-cached membership bitmap instead of scanning linearly.
const sparseHasThreshold = 8

// VertexSet is a frontier: a subset of vertices, stored sparse (ID list)
// or dense (word-packed Bitset) depending on size, as in Ligra.
//
// Sets returned by EdgeMap/VertexMap come from an internal pool; call
// Release when a set is no longer referenced to make steady-state
// iterations allocation-free. Releasing is optional — unreleased sets are
// ordinary garbage.
type VertexSet struct {
	n       int
	sparse  []graph.VertexID
	dense   Bitset
	isDense bool
	count   int

	// outEdges is the cached sum of member out-degrees driving direction
	// switching; outEdgesValid distinguishes "not computed" from a genuine
	// zero (a frontier of sinks must not recompute forever).
	outEdges      uint64
	outEdgesValid bool

	// lookup is a lazily-built membership bitmap for sparse sets, so Has
	// is O(1) instead of a linear scan (quadratic when applications probe
	// membership per edge).
	lookup      Bitset
	lookupValid bool
}

// reset re-initializes a (possibly pooled) set for a universe of n
// vertices, retaining slice capacity.
func (s *VertexSet) reset(n int) {
	s.n = n
	s.sparse = s.sparse[:0]
	s.isDense = false
	s.count = 0
	s.outEdges = 0
	s.outEdgesValid = false
	s.lookupValid = false
}

// ensureDense sizes and zeroes the dense bitset, retaining capacity.
func (s *VertexSet) ensureDense() {
	words := bitsetWords(s.n)
	if cap(s.dense) >= words {
		s.dense = s.dense[:words]
		s.dense.Clear()
	} else {
		s.dense = NewBitset(s.n)
	}
	s.isDense = true
}

// NewVertexSet returns a sparse frontier over n vertices containing the
// given members (deduplicated by the caller).
func NewVertexSet(n int, members ...graph.VertexID) *VertexSet {
	s := &VertexSet{n: n, sparse: append([]graph.VertexID(nil), members...), count: len(members)}
	return s
}

// NewDenseVertexSet returns a dense frontier from a membership bitmap
// (converted to the packed representation; the argument is not retained).
func NewDenseVertexSet(bitmap []bool) *VertexSet {
	s := &VertexSet{n: len(bitmap)}
	s.ensureDense()
	s.dense.FromBools(bitmap)
	s.count = s.dense.Count()
	return s
}

// newBitsetVertexSet wraps an existing packed bitmap (retained, not
// copied) whose popcount is count.
func newBitsetVertexSet(n int, bits Bitset, count int) *VertexSet {
	return &VertexSet{n: n, dense: bits, isDense: true, count: count}
}

// FullVertexSet returns a frontier containing every vertex of g. The
// word-filled bitset makes this O(n/64).
func FullVertexSet(n int) *VertexSet {
	b := NewBitset(n)
	b.FillUpTo(n)
	return newBitsetVertexSet(n, b, n)
}

// Len returns the number of member vertices.
func (s *VertexSet) Len() int { return s.count }

// Empty reports whether the frontier has no members.
func (s *VertexSet) Empty() bool { return s.count == 0 }

// NumVertices returns the size of the universe the set ranges over.
func (s *VertexSet) NumVertices() int { return s.n }

// Has reports membership of v. For sparse sets beyond a few members it
// answers from a lazily-built bitmap; the first such call on a set is not
// safe to race with others.
func (s *VertexSet) Has(v graph.VertexID) bool {
	if s.isDense {
		return s.dense.Has(v)
	}
	if len(s.sparse) <= sparseHasThreshold {
		for _, u := range s.sparse {
			if u == v {
				return true
			}
		}
		return false
	}
	return s.bits().Has(v)
}

// bits returns a packed membership bitmap: the dense representation
// itself, or the cached lookup bitmap of a sparse set (built on first
// use). The result is shared; treat as read-only.
func (s *VertexSet) bits() Bitset {
	if s.isDense {
		return s.dense
	}
	if !s.lookupValid {
		words := bitsetWords(s.n)
		if cap(s.lookup) >= words {
			s.lookup = s.lookup[:words]
			s.lookup.Clear()
		} else {
			s.lookup = NewBitset(s.n)
		}
		for _, v := range s.sparse {
			s.lookup.Set(v)
		}
		s.lookupValid = true
	}
	return s.lookup
}

// Members returns the member IDs in ascending order for dense sets, or
// insertion order for sparse sets. The result is freshly allocated for
// dense sets and shared for sparse ones; treat as read-only.
func (s *VertexSet) Members() []graph.VertexID {
	if !s.isDense {
		return s.sparse
	}
	return s.dense.AppendMembers(make([]graph.VertexID, 0, s.count))
}

// Bitmap returns a dense []bool membership bitmap, freshly allocated.
func (s *VertexSet) Bitmap() []bool {
	if s.isDense {
		return s.dense.ToBools(s.n)
	}
	b := make([]bool, s.n)
	for _, v := range s.sparse {
		b[v] = true
	}
	return b
}

// Bits returns the packed membership bitmap (shared, read-only).
func (s *VertexSet) Bits() Bitset { return s.bits() }

// OutEdgeSum returns the sum of member out-degrees — the quantity the
// Auto direction heuristic uses — computed on up to workers goroutines
// and cached on the set, so callers that account traversed edges per
// round don't rescan the degree array.
func (s *VertexSet) OutEdgeSum(g graph.View, workers int) uint64 {
	return s.computeOutEdges(g, workers)
}

// computeOutEdges fills the member out-degree sum used by the direction
// heuristic; cached after first use (including a genuinely zero sum).
// Degrees come from the n+1 index arrays on every backend, so this costs
// the same on compressed graphs as on plain ones.
func (s *VertexSet) computeOutEdges(g graph.View, workers int) uint64 {
	if s.outEdgesValid {
		return s.outEdges
	}
	var sum uint64
	if s.isDense {
		if workers > 1 {
			sum = parallelOutEdgeSum(g, s.dense, workers)
		} else {
			// Decode set bits word by word: no member-slice allocation.
			for wi, w := range s.dense {
				base := graph.VertexID(wi << 6)
				for w != 0 {
					v := base + graph.VertexID(bits.TrailingZeros64(w))
					w &= w - 1
					sum += uint64(g.OutDegree(v))
				}
			}
		}
	} else {
		for _, v := range s.sparse {
			sum += uint64(g.OutDegree(v))
		}
	}
	s.outEdges = sum
	s.outEdgesValid = true
	return sum
}

// EdgeMapFns carries the per-edge callbacks of an EdgeMap.
type EdgeMapFns struct {
	// Update processes edge src->dst in push mode (src in frontier) and is
	// expected to return true when dst becomes a member of the output
	// frontier. Must be idempotent-safe: dst may be offered multiple times
	// but is added at most once. When the EdgeMap runs with Workers > 1 in
	// push mode, Update is invoked concurrently and must synchronize its
	// own writes (atomics).
	Update func(src, dst graph.VertexID) bool
	// UpdatePull, if non-nil, is used in pull (dense) mode instead of
	// Update; same contract with the same argument order (src, dst). Ligra
	// distinguishes these because pull-mode updates need no atomics: each
	// destination is processed by exactly one worker, so updates that only
	// write dst state are parallel-safe as written.
	UpdatePull func(src, dst graph.VertexID) bool
	// UpdateWeighted, if non-nil, replaces Update/UpdatePull and
	// additionally receives the edge weight (0 on unweighted graphs). The
	// same concurrency contract as Update applies in parallel push mode.
	UpdateWeighted func(src, dst graph.VertexID, w uint32) bool
	// Cond gates destinations: edges into dst with Cond(dst) == false are
	// skipped. In pull mode Cond is rechecked as the in-edges of dst are
	// scanned, enabling early exit once dst saturates (e.g. BFS parent
	// found). Nil means always true. In parallel push mode Cond may be
	// invoked concurrently.
	Cond func(dst graph.VertexID) bool
}

// Direction forces a traversal direction in EdgeMapOpts.
type Direction uint8

const (
	// Auto picks push or pull with Ligra's |frontier out-edges| > M/20
	// heuristic.
	Auto Direction = iota
	// Push forces sparse push-based traversal over out-edges.
	Push
	// Pull forces dense pull-based traversal over in-edges.
	Pull
)

// EdgeMapOpts tunes an EdgeMap call.
type EdgeMapOpts struct {
	// Dir forces a direction; Auto by default.
	Dir Direction
	// Ctx, when non-nil, makes the traversal cooperatively cancellable:
	// it is polled exactly once, on entry — i.e. once per traversal
	// round — and a done context makes EdgeMap return nil without
	// scanning any edge. The caller owns translating the nil frontier
	// into Ctx.Err(). One poll per round costs a few nanoseconds, so
	// cancellation is free on the per-edge hot path.
	Ctx context.Context
	// DenseThresholdDiv is the divisor d in the switching rule
	// "go dense when frontier out-edges + size > M/d"; 0 means 20.
	DenseThresholdDiv int
	// Workers is the number of worker goroutines the traversal may use;
	// values <= 1 run sequentially. Ignored (sequential) while Trace is
	// set, so simulator traces stay deterministic.
	Workers int
	// Trace, when non-nil, observes every edge examination and property
	// access; used by the trace engine to feed the cache simulator.
	Trace Tracer
}

// Tracer observes the memory behaviour of a traversal. Implemented by the
// trace engine; the zero-overhead case is a nil Tracer.
type Tracer interface {
	// EdgeExamined is called for each edge scanned: src, dst and whether
	// the traversal ran in pull mode.
	EdgeExamined(src, dst graph.VertexID, pull bool)
	// VertexVisited is called once per frontier vertex driving the scan.
	VertexVisited(v graph.VertexID, pull bool)
}

// PropertyWriteTracer is optionally implemented by tracers that model
// actual property-array writes separately from edge examinations.
// Applications call PropertyWritten(dst) from their update functions when
// they really write dst's property — this is what lets the simulator
// distinguish SSSP's conditional pushes from PRD's unconditional ones, the
// contrast at the heart of Fig. 9 (§VI-C).
type PropertyWriteTracer interface {
	Tracer
	PropertyWritten(v graph.VertexID)
}

// WriteTracer extracts the optional write-tracking interface from a Tracer
// once, so per-edge code avoids repeated type assertions. Returns nil when
// tr is nil or does not track writes.
func WriteTracer(tr Tracer) PropertyWriteTracer {
	if wt, ok := tr.(PropertyWriteTracer); ok {
		return wt
	}
	return nil
}

// EdgeMap applies fns over the edges leaving the frontier, returning the
// next frontier, per the Ligra model. Push mode scans out-edges of
// frontier members; pull mode scans in-edges of all vertices passing Cond
// and checks membership of the source. The returned set is pooled; the
// caller may Release it once done.
//
// g may be any graph.View. The plain *graph.Graph keeps its original
// slice-ranging loops; the compressed *csrz.Graph gets streaming-decode
// loops that walk the varint adjacency in place (see edgemap_csrz.go);
// anything else runs generic loops through a graph.AdjBuffer. All
// backends produce bit-identical frontiers and property updates because
// every path enumerates each neighbor list in stored order and pull-mode
// destination ownership is 64-aligned on every path.
//
// When opts.Ctx is non-nil and already done, EdgeMap returns nil instead
// of a frontier (see EdgeMapOpts.Ctx); no other call path returns nil.
func EdgeMap(g graph.View, frontier *VertexSet, fns EdgeMapFns, opts EdgeMapOpts) *VertexSet {
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		return nil
	}
	workers := opts.Workers
	if workers <= 1 || opts.Trace != nil {
		workers = 1
	}
	dir := opts.Dir
	if dir == Auto {
		div := opts.DenseThresholdDiv
		if div <= 0 {
			div = 20
		}
		threshold := uint64(g.NumEdges() / div)
		if frontier.computeOutEdges(g, workers)+uint64(frontier.Len()) > threshold {
			dir = Pull
		} else {
			dir = Push
		}
	}
	switch cg := g.(type) {
	case *graph.Graph:
		if dir == Pull {
			if workers > 1 {
				return edgeMapDensePar(cg, frontier, fns, workers)
			}
			return edgeMapDense(cg, frontier, fns, opts.Trace)
		}
		if workers > 1 {
			return edgeMapSparsePar(cg, frontier, fns, workers)
		}
		return edgeMapSparse(cg, frontier, fns, opts.Trace)
	case *csrz.Graph:
		// The streaming loops have no tracer hooks; tracing (which already
		// pins workers = 1) takes the generic buffered path below.
		if opts.Trace == nil {
			if dir == Pull {
				if workers > 1 {
					return edgeMapDenseParCZ(cg, frontier, fns, workers)
				}
				return edgeMapDenseCZ(cg, frontier, fns)
			}
			if workers > 1 {
				return edgeMapSparseParCZ(cg, frontier, fns, workers)
			}
			return edgeMapSparseCZ(cg, frontier, fns)
		}
	}
	if dir == Pull {
		if workers > 1 {
			return edgeMapDenseParGeneric(g, frontier, fns, workers)
		}
		return edgeMapDenseGeneric(g, frontier, fns, opts.Trace)
	}
	if workers > 1 {
		return edgeMapSparseParGeneric(g, frontier, fns, workers)
	}
	return edgeMapSparseGeneric(g, frontier, fns, opts.Trace)
}

func edgeMapSparse(g *graph.Graph, frontier *VertexSet, fns EdgeMapFns, tr Tracer) *VertexSet {
	cond := fns.Cond
	out := newPooledSparse(g.NumVertices())
	claimedBox := getScratchBitset(g.NumVertices())
	claimed := *claimedBox
	members, mbuf := frontierMembers(frontier)
	for _, u := range members {
		if tr != nil {
			tr.VertexVisited(u, false)
		}
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeights(u)
		for i, dst := range nbrs {
			if tr != nil {
				tr.EdgeExamined(u, dst, false)
			}
			if cond != nil && !cond(dst) {
				continue
			}
			var hit bool
			if fns.UpdateWeighted != nil {
				var w uint32
				if ws != nil {
					w = ws[i]
				}
				hit = fns.UpdateWeighted(u, dst, w)
			} else {
				hit = fns.Update(u, dst)
			}
			if hit && !claimed.Has(dst) {
				claimed.Set(dst)
				out.sparse = append(out.sparse, dst)
			}
		}
	}
	putScratchBitset(claimedBox)
	putIDBuf(mbuf)
	out.count = len(out.sparse)
	return out
}

func edgeMapDense(g *graph.Graph, frontier *VertexSet, fns EdgeMapFns, tr Tracer) *VertexSet {
	update := fns.UpdatePull
	if update == nil {
		update = fns.Update
	}
	cond := fns.Cond
	inFrontier := frontier.bits()
	out := newPooledDense(g.NumVertices())
	next := out.dense
	for v := 0; v < g.NumVertices(); v++ {
		dst := graph.VertexID(v)
		if cond != nil && !cond(dst) {
			continue
		}
		if tr != nil {
			tr.VertexVisited(dst, true)
		}
		srcs := g.InNeighbors(dst)
		ws := g.InWeights(dst)
		for i, src := range srcs {
			if tr != nil {
				tr.EdgeExamined(src, dst, true)
			}
			if !inFrontier.Has(src) {
				continue
			}
			var hit bool
			if fns.UpdateWeighted != nil {
				var w uint32
				if ws != nil {
					w = ws[i]
				}
				hit = fns.UpdateWeighted(src, dst, w)
			} else {
				hit = update(src, dst)
			}
			if hit {
				next.Set(dst)
			}
			// Early exit: once dst stops satisfying Cond (e.g. it has been
			// claimed), the rest of its in-edges are skipped, as in Ligra.
			if cond != nil && !cond(dst) {
				break
			}
		}
	}
	out.count = next.Count()
	return out
}

// VertexMap applies f to every member of the frontier and returns the set
// of members for which f returned true. The returned set is pooled.
func VertexMap(s *VertexSet, f func(v graph.VertexID) bool) *VertexSet {
	return VertexMapPar(s, f, 1)
}

// VertexMapPar is VertexMap with a worker count. Both representations
// produce output identical to the sequential VertexMap: dense chunks are
// disjoint and 64-aligned, and sparse per-chunk outputs are concatenated
// in chunk order, preserving input order. f may be invoked concurrently
// when workers > 1.
func VertexMapPar(s *VertexSet, f func(v graph.VertexID) bool, workers int) *VertexSet {
	if s.isDense {
		// The dense path scans the whole universe bitmap, so parallelism is
		// bounded by n, not by how many members the scan will find.
		out := newPooledDense(s.n)
		par.For(s.n, workers, 64, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if s.dense.Has(graph.VertexID(v)) && f(graph.VertexID(v)) {
					out.dense.Set(graph.VertexID(v))
				}
			}
		})
		out.count = out.dense.Count()
		return out
	}
	if workers > s.count {
		workers = s.count
	}
	out := newPooledSparse(s.n)
	if workers <= 1 {
		for _, v := range s.sparse {
			if f(v) {
				out.sparse = append(out.sparse, v)
			}
		}
	} else {
		out.sparse = gatherIDs(len(s.sparse), workers, out.sparse, func(lo, hi int, local []graph.VertexID) []graph.VertexID {
			for _, v := range s.sparse[lo:hi] {
				if f(v) {
					local = append(local, v)
				}
			}
			return local
		})
	}
	out.count = len(out.sparse)
	return out
}
