// Package ligra is a compact reimplementation of the Ligra shared-memory
// graph-processing model (Shun & Blelloch, PPoPP'13) that the paper uses
// as its evaluation framework: vertex subsets (frontiers), EdgeMap with
// push- and pull-based traversal and automatic direction switching, and
// VertexMap.
//
// The implementation is deliberately sequential and deterministic: the
// reproduction host is single-core, the paper's locality phenomena are
// visible single-threaded, and multi-core cache behaviour is studied in
// the trace-driven simulator (internal/cachesim) where core count is a
// model parameter rather than a host property.
package ligra

import "graphreorder/internal/graph"

// VertexSet is a frontier: a subset of vertices, stored sparse (ID list)
// or dense (bitmap) depending on size, as in Ligra.
type VertexSet struct {
	n        int
	sparse   []graph.VertexID
	dense    []bool
	isDense  bool
	count    int
	outEdges uint64 // sum of out-degrees of members; drives direction switching
}

// NewVertexSet returns a sparse frontier over n vertices containing the
// given members (deduplicated by the caller).
func NewVertexSet(n int, members ...graph.VertexID) *VertexSet {
	s := &VertexSet{n: n, sparse: append([]graph.VertexID(nil), members...), count: len(members)}
	return s
}

// NewDenseVertexSet returns a dense frontier from a membership bitmap (the
// slice is retained, not copied).
func NewDenseVertexSet(bitmap []bool) *VertexSet {
	s := &VertexSet{n: len(bitmap), dense: bitmap, isDense: true}
	for _, b := range bitmap {
		if b {
			s.count++
		}
	}
	return s
}

// FullVertexSet returns a frontier containing every vertex of g.
func FullVertexSet(n int) *VertexSet {
	bitmap := make([]bool, n)
	for i := range bitmap {
		bitmap[i] = true
	}
	return NewDenseVertexSet(bitmap)
}

// Len returns the number of member vertices.
func (s *VertexSet) Len() int { return s.count }

// Empty reports whether the frontier has no members.
func (s *VertexSet) Empty() bool { return s.count == 0 }

// NumVertices returns the size of the universe the set ranges over.
func (s *VertexSet) NumVertices() int { return s.n }

// Has reports membership of v.
func (s *VertexSet) Has(v graph.VertexID) bool {
	if s.isDense {
		return s.dense[v]
	}
	for _, u := range s.sparse {
		if u == v {
			return true
		}
	}
	return false
}

// Members returns the member IDs in ascending order for dense sets, or
// insertion order for sparse sets. The result is freshly allocated for
// dense sets and shared for sparse ones; treat as read-only.
func (s *VertexSet) Members() []graph.VertexID {
	if !s.isDense {
		return s.sparse
	}
	out := make([]graph.VertexID, 0, s.count)
	for v, in := range s.dense {
		if in {
			out = append(out, graph.VertexID(v))
		}
	}
	return out
}

// Bitmap returns a dense membership bitmap (freshly allocated for sparse
// sets, shared for dense ones); treat as read-only.
func (s *VertexSet) Bitmap() []bool {
	if s.isDense {
		return s.dense
	}
	b := make([]bool, s.n)
	for _, v := range s.sparse {
		b[v] = true
	}
	return b
}

// computeOutEdges fills the member out-degree sum used by the direction
// heuristic; cached after first use.
func (s *VertexSet) computeOutEdges(g *graph.Graph) uint64 {
	if s.outEdges != 0 || s.count == 0 {
		return s.outEdges
	}
	var sum uint64
	if s.isDense {
		for v, in := range s.dense {
			if in {
				sum += uint64(g.OutDegree(graph.VertexID(v)))
			}
		}
	} else {
		for _, v := range s.sparse {
			sum += uint64(g.OutDegree(v))
		}
	}
	s.outEdges = sum
	return sum
}

// EdgeMapFns carries the per-edge callbacks of an EdgeMap.
type EdgeMapFns struct {
	// Update processes edge src->dst in push mode (src in frontier) and is
	// expected to return true when dst becomes a member of the output
	// frontier. Must be idempotent-safe: dst may be offered multiple times
	// but is added at most once.
	Update func(src, dst graph.VertexID) bool
	// UpdatePull, if non-nil, is used in pull (dense) mode instead of
	// Update; same contract with the same argument order (src, dst). Ligra
	// distinguishes these because pull-mode updates need no atomics.
	UpdatePull func(src, dst graph.VertexID) bool
	// UpdateWeighted, if non-nil, replaces Update/UpdatePull and
	// additionally receives the edge weight (0 on unweighted graphs).
	UpdateWeighted func(src, dst graph.VertexID, w uint32) bool
	// Cond gates destinations: edges into dst with Cond(dst) == false are
	// skipped. In pull mode Cond is rechecked as the in-edges of dst are
	// scanned, enabling early exit once dst saturates (e.g. BFS parent
	// found). Nil means always true.
	Cond func(dst graph.VertexID) bool
}

// Direction forces a traversal direction in EdgeMapOpts.
type Direction uint8

const (
	// Auto picks push or pull with Ligra's |frontier out-edges| > M/20
	// heuristic.
	Auto Direction = iota
	// Push forces sparse push-based traversal over out-edges.
	Push
	// Pull forces dense pull-based traversal over in-edges.
	Pull
)

// EdgeMapOpts tunes an EdgeMap call.
type EdgeMapOpts struct {
	// Dir forces a direction; Auto by default.
	Dir Direction
	// DenseThresholdDiv is the divisor d in the switching rule
	// "go dense when frontier out-edges + size > M/d"; 0 means 20.
	DenseThresholdDiv int
	// Trace, when non-nil, observes every edge examination and property
	// access; used by the trace engine to feed the cache simulator.
	Trace Tracer
}

// Tracer observes the memory behaviour of a traversal. Implemented by the
// trace engine; the zero-overhead case is a nil Tracer.
type Tracer interface {
	// EdgeExamined is called for each edge scanned: src, dst and whether
	// the traversal ran in pull mode.
	EdgeExamined(src, dst graph.VertexID, pull bool)
	// VertexVisited is called once per frontier vertex driving the scan.
	VertexVisited(v graph.VertexID, pull bool)
}

// PropertyWriteTracer is optionally implemented by tracers that model
// actual property-array writes separately from edge examinations.
// Applications call PropertyWritten(dst) from their update functions when
// they really write dst's property — this is what lets the simulator
// distinguish SSSP's conditional pushes from PRD's unconditional ones, the
// contrast at the heart of Fig. 9 (§VI-C).
type PropertyWriteTracer interface {
	Tracer
	PropertyWritten(v graph.VertexID)
}

// WriteTracer extracts the optional write-tracking interface from a Tracer
// once, so per-edge code avoids repeated type assertions. Returns nil when
// tr is nil or does not track writes.
func WriteTracer(tr Tracer) PropertyWriteTracer {
	if wt, ok := tr.(PropertyWriteTracer); ok {
		return wt
	}
	return nil
}

// EdgeMap applies fns over the edges leaving the frontier, returning the
// next frontier, per the Ligra model. Push mode scans out-edges of
// frontier members; pull mode scans in-edges of all vertices passing Cond
// and checks membership of the source.
func EdgeMap(g *graph.Graph, frontier *VertexSet, fns EdgeMapFns, opts EdgeMapOpts) *VertexSet {
	dir := opts.Dir
	if dir == Auto {
		div := opts.DenseThresholdDiv
		if div <= 0 {
			div = 20
		}
		threshold := uint64(g.NumEdges() / div)
		if frontier.computeOutEdges(g)+uint64(frontier.Len()) > threshold {
			dir = Pull
		} else {
			dir = Push
		}
	}
	if dir == Pull {
		return edgeMapDense(g, frontier, fns, opts.Trace)
	}
	return edgeMapSparse(g, frontier, fns, opts.Trace)
}

func edgeMapSparse(g *graph.Graph, frontier *VertexSet, fns EdgeMapFns, tr Tracer) *VertexSet {
	cond := fns.Cond
	next := make([]graph.VertexID, 0, frontier.Len())
	inNext := make([]bool, g.NumVertices())
	for _, u := range frontier.Members() {
		if tr != nil {
			tr.VertexVisited(u, false)
		}
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeights(u)
		for i, dst := range nbrs {
			if tr != nil {
				tr.EdgeExamined(u, dst, false)
			}
			if cond != nil && !cond(dst) {
				continue
			}
			var hit bool
			if fns.UpdateWeighted != nil {
				var w uint32
				if ws != nil {
					w = ws[i]
				}
				hit = fns.UpdateWeighted(u, dst, w)
			} else {
				hit = fns.Update(u, dst)
			}
			if hit && !inNext[dst] {
				inNext[dst] = true
				next = append(next, dst)
			}
		}
	}
	return NewVertexSet(g.NumVertices(), next...)
}

func edgeMapDense(g *graph.Graph, frontier *VertexSet, fns EdgeMapFns, tr Tracer) *VertexSet {
	update := fns.UpdatePull
	if update == nil {
		update = fns.Update
	}
	cond := fns.Cond
	inFrontier := frontier.Bitmap()
	nextDense := make([]bool, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		dst := graph.VertexID(v)
		if cond != nil && !cond(dst) {
			continue
		}
		if tr != nil {
			tr.VertexVisited(dst, true)
		}
		srcs := g.InNeighbors(dst)
		ws := g.InWeights(dst)
		for i, src := range srcs {
			if tr != nil {
				tr.EdgeExamined(src, dst, true)
			}
			if !inFrontier[src] {
				continue
			}
			var hit bool
			if fns.UpdateWeighted != nil {
				var w uint32
				if ws != nil {
					w = ws[i]
				}
				hit = fns.UpdateWeighted(src, dst, w)
			} else {
				hit = update(src, dst)
			}
			if hit {
				nextDense[v] = true
			}
			// Early exit: once dst stops satisfying Cond (e.g. it has been
			// claimed), the rest of its in-edges are skipped, as in Ligra.
			if cond != nil && !cond(dst) {
				break
			}
		}
	}
	return NewDenseVertexSet(nextDense)
}

// VertexMap applies f to every member of the frontier and returns the set
// of members for which f returned true.
func VertexMap(s *VertexSet, f func(v graph.VertexID) bool) *VertexSet {
	if s.isDense {
		next := make([]bool, s.n)
		for v, in := range s.dense {
			if in && f(graph.VertexID(v)) {
				next[v] = true
			}
		}
		return NewDenseVertexSet(next)
	}
	var next []graph.VertexID
	for _, v := range s.sparse {
		if f(v) {
			next = append(next, v)
		}
	}
	return NewVertexSet(s.n, next...)
}
