//go:build race

package ligra

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation allocates and defeats exact
// allocation-count assertions.
const raceEnabled = true
