// Package wal implements the write-ahead log that makes graphd's
// mutable snapshots crash-safe. Every accepted mutation batch is
// appended as one length-prefixed, CRC32-guarded record before its
// epoch receipt is returned; after each publish an epoch record is
// appended so recovery knows the highest epoch any receipt could carry.
// On restart the log is replayed on top of the last persisted
// checkpoint, stopping at the first bad CRC or short record — a torn
// tail from a crash mid-write loses only writes that were never
// acknowledged.
//
// Record wire format (little-endian):
//
//	u32 payload length | u32 CRC32(payload) | payload
//
// Payloads begin with a one-byte record type:
//
//	batch: u8 'B' | u64 seq | u32 addVertices | u32 count |
//	       count × (u32 src | u32 dst | u32 weight | u8 flags)
//	epoch: u8 'E' | u64 epoch
//
// Batch records carry the dynamic graph's batch sequence number, making
// replay idempotent across checkpoints: a checkpoint taken at sequence
// S makes every record with seq <= S a no-op on replay, so a crash
// between "checkpoint written" and "log truncated" cannot double-apply.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
	"time"

	"graphreorder/internal/dynamic"
	"graphreorder/internal/faultinject"
	"graphreorder/internal/graph"
)

// SyncPolicy says when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs at every sync point (once per publish group) —
	// an epoch receipt then guarantees the batch survives a crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Interval; receipts issued
	// between fsyncs guarantee visibility but not durability.
	SyncInterval
	// SyncNever leaves flushing to the operating system.
	SyncNever
)

// String returns the policy's flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses "always", "never" or "interval:<duration>".
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch {
	case s == "" || s == "always":
		return SyncAlways, 0, nil
	case s == "never":
		return SyncNever, 0, nil
	case len(s) > len("interval:") && s[:len("interval:")] == "interval:":
		d, err := time.ParseDuration(s[len("interval:"):])
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("wal: bad fsync interval %q", s)
		}
		return SyncInterval, d, nil
	default:
		return 0, 0, fmt.Errorf("wal: bad fsync policy %q (want always|never|interval:<dur>)", s)
	}
}

// Stats aggregates WAL activity; a Store shares one Stats across all of
// its logs so /metrics sees totals that survive log close/reopen.
type Stats struct {
	Records     atomic.Uint64 // records appended
	Bytes       atomic.Uint64 // bytes appended
	Fsyncs      atomic.Uint64 // fsync calls issued
	Truncations atomic.Uint64 // rewinds + torn/corrupt tails dropped
}

// Options configures a Log.
type Options struct {
	Policy   SyncPolicy
	Interval time.Duration // for SyncInterval
	Stats    *Stats        // optional shared counters
}

const (
	recBatch byte = 'B'
	recEpoch byte = 'E'

	headerBytes = 8 // u32 length + u32 crc
	updateBytes = 13
	// maxPayload guards replay against garbage lengths.
	maxPayload = 64 << 20
)

// ErrBroken is returned by appends after an earlier failure left the
// log's tail state unknown; the owner must stop acknowledging writes.
var ErrBroken = errors.New("wal: log broken by earlier write failure")

// Batch is one decoded mutation batch record.
type Batch struct {
	// Seq is the batch's sequence number in the graph's mutation
	// history (1-based, assigned at apply time).
	Seq uint64
	// AddVertices grows the vertex space before Updates apply.
	AddVertices int
	// Updates is the edge batch.
	Updates []dynamic.Update
}

// Log is an append-only mutation log for one mutable snapshot. It is
// not safe for concurrent use; graphd's single refresher goroutine is
// the only writer by construction.
type Log struct {
	f        *os.File
	path     string
	off      int64 // logical end: offset after the last good record
	policy   SyncPolicy
	interval time.Duration
	lastSync time.Time
	dirty    bool
	broken   bool
	stats    *Stats
	scratch  []byte
}

// Open opens (creating if needed) the log at path for appending,
// truncating it to startOff first — the good-prefix length a prior
// Replay reported, so a torn tail is physically dropped before new
// records land after it.
func Open(path string, startOff int64, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	if startOff < 0 || startOff > size {
		startOff = size
	}
	if startOff < size {
		if err := f.Truncate(startOff); err != nil {
			f.Close()
			return nil, err
		}
		if opts.Stats != nil {
			opts.Stats.Truncations.Add(1)
		}
	}
	if _, err := f.Seek(startOff, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	stats := opts.Stats
	if stats == nil {
		stats = &Stats{}
	}
	return &Log{
		f:        f,
		path:     path,
		off:      startOff,
		policy:   opts.Policy,
		interval: opts.Interval,
		lastSync: time.Now(),
		stats:    stats,
	}, nil
}

// Offset returns the logical end of the log — the rewind target to pass
// back if work appended after this point must be rolled back.
func (l *Log) Offset() int64 { return l.off }

// Size returns the log's current byte length (same as Offset; the file
// never holds bytes past the last good record while the log is open).
func (l *Log) Size() int64 { return l.off }

// appendRecord frames payload and writes it at the current offset. The
// "wal.append" point injects write errors; the "wal.torn" point makes
// the write stop short by the armed Value bytes and reports a write
// failure, simulating a crash mid-record.
func (l *Log) appendRecord(payload []byte) error {
	if l.broken {
		return ErrBroken
	}
	if err := faultinject.Fire("wal.append"); err != nil {
		return err
	}
	rec := l.scratch[:0]
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	rec = append(rec, hdr[:]...)
	rec = append(rec, payload...)
	l.scratch = rec[:0]

	if f, ok := faultinject.Armed("wal.torn"); ok {
		drop := int(f.Value)
		if drop <= 0 || drop > len(rec) {
			drop = len(rec) / 2
		}
		// Write the torn prefix and leave it on disk: from here on the
		// log behaves as if the process died mid-write.
		l.f.Write(rec[:len(rec)-drop])
		l.f.Sync()
		l.broken = true
		return fmt.Errorf("%w: torn write", faultinject.ErrInjected)
	}

	n, err := l.f.Write(rec)
	if err != nil {
		// A partial write leaves an undefined tail; rewind to the last
		// good record so the next open replays cleanly, and refuse
		// further appends if even that fails.
		if n > 0 {
			if terr := l.f.Truncate(l.off); terr != nil {
				l.broken = true
			} else {
				l.f.Seek(l.off, io.SeekStart)
			}
		}
		return err
	}
	l.off += int64(len(rec))
	l.dirty = true
	l.stats.Records.Add(1)
	l.stats.Bytes.Add(uint64(len(rec)))
	return nil
}

// AppendBatch appends one mutation batch record. It returns the offset
// the log had before the append — the rewind target if applying the
// batch to the in-memory graph subsequently fails.
func (l *Log) AppendBatch(seq uint64, addVertices int, updates []dynamic.Update) (int64, error) {
	prev := l.off
	payload := make([]byte, 0, 17+len(updates)*updateBytes)
	payload = append(payload, recBatch)
	payload = binary.LittleEndian.AppendUint64(payload, seq)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(addVertices))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(updates)))
	for _, u := range updates {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(u.Edge.Src))
		payload = binary.LittleEndian.AppendUint32(payload, uint32(u.Edge.Dst))
		payload = binary.LittleEndian.AppendUint32(payload, u.Edge.Weight)
		var flags byte
		if u.Remove {
			flags = 1
		}
		payload = append(payload, flags)
	}
	if err := l.appendRecord(payload); err != nil {
		return prev, err
	}
	return prev, nil
}

// AppendEpoch appends an epoch record: every receipt issued so far
// carries an epoch <= this one, so recovery can restore the epoch
// counter past anything a client may hold.
func (l *Log) AppendEpoch(epoch uint64) error {
	payload := make([]byte, 0, 9)
	payload = append(payload, recEpoch)
	payload = binary.LittleEndian.AppendUint64(payload, epoch)
	return l.appendRecord(payload)
}

// Sync fsyncs pending records unconditionally. The
// "wal.crash-before-fsync" and "wal.crash-after-fsync" points let tests
// simulate a crash on either side of the durability boundary.
func (l *Log) Sync() error {
	if l.broken {
		return ErrBroken
	}
	if !l.dirty {
		return nil
	}
	if err := faultinject.Fire("wal.crash-before-fsync"); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.lastSync = time.Now()
	l.stats.Fsyncs.Add(1)
	if err := faultinject.Fire("wal.crash-after-fsync"); err != nil {
		return err
	}
	return nil
}

// MaybeSync applies the configured fsync policy: always syncs, syncs if
// the interval elapsed, or does nothing.
func (l *Log) MaybeSync() error {
	switch l.policy {
	case SyncAlways:
		return l.Sync()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.interval {
			return l.Sync()
		}
	}
	return nil
}

// Synced reports whether every appended record has been fsynced — what
// separates a receipt's durability guarantee from mere visibility.
func (l *Log) Synced() bool { return !l.dirty && !l.broken }

// Rewind truncates the log back to off, dropping records appended after
// it (a failed apply or a rolled-back publish group).
func (l *Log) Rewind(off int64) error {
	if l.broken {
		return ErrBroken
	}
	if off < 0 || off > l.off {
		return fmt.Errorf("wal: rewind to %d outside log [0,%d]", off, l.off)
	}
	if off == l.off {
		return nil
	}
	if err := l.f.Truncate(off); err != nil {
		l.broken = true
		return err
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		l.broken = true
		return err
	}
	l.off = off
	l.dirty = true
	l.stats.Truncations.Add(1)
	return nil
}

// Reset empties the log — the checkpoint truncation: everything before
// this point is covered by a persisted snapshot.
func (l *Log) Reset() error {
	if err := l.Rewind(0); err != nil {
		return err
	}
	return l.Sync()
}

// Close flushes and closes the log. A clean shutdown calls Sync first
// via the owner's drain path; Close syncs again defensively.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	var err error
	if !l.broken && l.dirty {
		err = l.Sync()
	}
	cerr := l.f.Close()
	l.f = nil
	if err == nil {
		err = cerr
	}
	return err
}

// Abandon closes the file descriptor without flushing — the simulated
// crash used by chaos testing. Whatever reached the OS stays; anything
// else is lost, exactly as in a real kill.
func (l *Log) Abandon() {
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
}

// ReplayResult is what a recovery scan found.
type ReplayResult struct {
	// Batches are the decoded batch records, in append order, with
	// Seq > the afterSeq floor passed to Replay.
	Batches []Batch
	// LastEpoch is the highest epoch record seen (0 if none).
	LastEpoch uint64
	// GoodOffset is the byte length of the valid record prefix — pass
	// it to Open so the torn tail is physically dropped.
	GoodOffset int64
	// Torn reports whether a torn or corrupt tail was dropped.
	Torn bool
	// Records counts valid records scanned (including skipped ones).
	Records int
}

// Replay scans the log at path and decodes every valid record, stopping
// at the first short, oversized or CRC-mismatched record (the torn
// tail). Batch records with Seq <= afterSeq are counted but not
// returned: they are covered by the checkpoint the caller is replaying
// on top of. A missing file is an empty log, not an error.
func Replay(path string, afterSeq uint64) (ReplayResult, error) {
	var res ReplayResult
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return res, nil
	}
	if err != nil {
		return res, err
	}
	defer f.Close()

	var hdr [headerBytes]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			// Clean EOF ends the scan; a partial header is a torn tail.
			res.Torn = res.Torn || errors.Is(err, io.ErrUnexpectedEOF)
			return res, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if length == 0 || length > maxPayload {
			res.Torn = true
			return res, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			res.Torn = true
			return res, nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			res.Torn = true
			return res, nil
		}
		b, epoch, err := decodePayload(payload)
		if err != nil {
			res.Torn = true
			return res, nil
		}
		res.Records++
		res.GoodOffset += int64(headerBytes) + int64(length)
		switch {
		case b != nil:
			if b.Seq > afterSeq {
				res.Batches = append(res.Batches, *b)
			}
		case epoch > res.LastEpoch:
			res.LastEpoch = epoch
		}
	}
}

// decodePayload decodes one validated record payload into either a
// batch or an epoch value.
func decodePayload(p []byte) (*Batch, uint64, error) {
	switch p[0] {
	case recEpoch:
		if len(p) != 9 {
			return nil, 0, errors.New("wal: bad epoch record size")
		}
		return nil, binary.LittleEndian.Uint64(p[1:]), nil
	case recBatch:
		if len(p) < 17 {
			return nil, 0, errors.New("wal: short batch record")
		}
		b := &Batch{
			Seq:         binary.LittleEndian.Uint64(p[1:]),
			AddVertices: int(binary.LittleEndian.Uint32(p[9:])),
		}
		count := int(binary.LittleEndian.Uint32(p[13:]))
		if len(p) != 17+count*updateBytes {
			return nil, 0, errors.New("wal: batch record size mismatch")
		}
		b.Updates = make([]dynamic.Update, count)
		for i := 0; i < count; i++ {
			rec := p[17+i*updateBytes:]
			b.Updates[i] = dynamic.Update{
				Edge: graph.Edge{
					Src:    graph.VertexID(binary.LittleEndian.Uint32(rec[0:])),
					Dst:    graph.VertexID(binary.LittleEndian.Uint32(rec[4:])),
					Weight: binary.LittleEndian.Uint32(rec[8:]),
				},
				Remove: rec[12]&1 != 0,
			}
		}
		return b, 0, nil
	default:
		return nil, 0, fmt.Errorf("wal: unknown record type %q", p[0])
	}
}
