package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"graphreorder/internal/dynamic"
	"graphreorder/internal/faultinject"
	"graphreorder/internal/graph"
)

func upd(src, dst graph.VertexID, w uint32, remove bool) dynamic.Update {
	return dynamic.Update{Edge: graph.Edge{Src: src, Dst: dst, Weight: w}, Remove: remove}
}

// writeBatches appends n batches (and one epoch record per batch) to a
// fresh log at path and returns the batches written.
func writeBatches(t *testing.T, path string, n int) []Batch {
	t.Helper()
	l, err := Open(path, -1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	var out []Batch
	for i := 0; i < n; i++ {
		b := Batch{
			Seq:         uint64(i + 1),
			AddVertices: i % 2,
			Updates: []dynamic.Update{
				upd(graph.VertexID(i), graph.VertexID(i+1), uint32(10+i), false),
				upd(graph.VertexID(i+1), graph.VertexID(i), 1, i%3 == 0),
			},
		}
		if _, err := l.AppendBatch(b.Seq, b.AddVertices, b.Updates); err != nil {
			t.Fatalf("AppendBatch %d: %v", i, err)
		}
		if err := l.AppendEpoch(uint64(100 + i)); err != nil {
			t.Fatalf("AppendEpoch %d: %v", i, err)
		}
		if err := l.MaybeSync(); err != nil {
			t.Fatalf("MaybeSync %d: %v", i, err)
		}
		out = append(out, b)
	}
	return out
}

func sameBatch(a, b Batch) bool {
	if a.Seq != b.Seq || a.AddVertices != b.AddVertices || len(a.Updates) != len(b.Updates) {
		return false
	}
	for i := range a.Updates {
		if a.Updates[i] != b.Updates[i] {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	want := writeBatches(t, path, 5)
	res, err := Replay(path, 0)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Torn {
		t.Fatal("clean log reported torn")
	}
	if len(res.Batches) != len(want) {
		t.Fatalf("got %d batches, want %d", len(res.Batches), len(want))
	}
	for i := range want {
		if !sameBatch(res.Batches[i], want[i]) {
			t.Fatalf("batch %d mismatch: %+v vs %+v", i, res.Batches[i], want[i])
		}
	}
	if res.LastEpoch != 104 {
		t.Fatalf("LastEpoch = %d, want 104", res.LastEpoch)
	}
	if fi, _ := os.Stat(path); fi.Size() != res.GoodOffset {
		t.Fatalf("GoodOffset %d != file size %d", res.GoodOffset, fi.Size())
	}
}

func TestReplaySkipsCheckpointedSeqs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	writeBatches(t, path, 6)
	res, err := Replay(path, 4)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(res.Batches) != 2 || res.Batches[0].Seq != 5 || res.Batches[1].Seq != 6 {
		t.Fatalf("afterSeq filter wrong: %+v", res.Batches)
	}
	// Skipped records still count toward the good prefix.
	if fi, _ := os.Stat(path); fi.Size() != res.GoodOffset {
		t.Fatalf("GoodOffset %d != file size %d", res.GoodOffset, fi.Size())
	}
}

// TestCorruptionRecovery is the satellite table: torn final record (via
// the faultinject torn-write hook), a bit-flipped CRC mid-log, an empty
// file and a missing file all recover to the longest good prefix.
func TestCorruptionRecovery(t *testing.T) {
	cases := []struct {
		name        string
		setup       func(t *testing.T, path string)
		wantBatches int
		wantTorn    bool
		wantEpoch   uint64
	}{
		{
			name: "torn-final-record",
			setup: func(t *testing.T, path string) {
				writeBatches(t, path, 3)
				// Arm the torn-write hook for the 4th batch: the
				// record's last 5 bytes never reach disk.
				l, err := Open(path, -1, Options{Policy: SyncAlways})
				if err != nil {
					t.Fatal(err)
				}
				defer l.Abandon()
				faultinject.Enable("wal.torn", faultinject.Fault{Value: 5})
				t.Cleanup(faultinject.Reset)
				_, err = l.AppendBatch(4, 0, []dynamic.Update{upd(9, 9, 1, false)})
				if !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("torn append err = %v", err)
				}
			},
			wantBatches: 3,
			wantTorn:    true,
			wantEpoch:   102,
		},
		{
			name: "bit-flipped-crc-mid-log",
			setup: func(t *testing.T, path string) {
				writeBatches(t, path, 4)
				// Corrupt the CRC of the second record (first epoch
				// record): replay must stop after record 1.
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				first := headerBytes + int(binary.LittleEndian.Uint32(data[0:]))
				data[first+4] ^= 0x40
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantBatches: 1,
			wantTorn:    true,
			wantEpoch:   0,
		},
		{
			name: "empty-wal",
			setup: func(t *testing.T, path string) {
				if err := os.WriteFile(path, nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name:  "missing-wal",
			setup: func(t *testing.T, path string) {},
		},
		{
			name: "garbage-length-tail",
			setup: func(t *testing.T, path string) {
				writeBatches(t, path, 2)
				f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})
				f.Close()
			},
			wantBatches: 2,
			wantTorn:    true,
			wantEpoch:   101,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "w.wal")
			tc.setup(t, path)
			res, err := Replay(path, 0)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if len(res.Batches) != tc.wantBatches {
				t.Fatalf("batches = %d, want %d", len(res.Batches), tc.wantBatches)
			}
			if res.Torn != tc.wantTorn {
				t.Fatalf("Torn = %v, want %v", res.Torn, tc.wantTorn)
			}
			if res.LastEpoch != tc.wantEpoch {
				t.Fatalf("LastEpoch = %d, want %d", res.LastEpoch, tc.wantEpoch)
			}

			// Reopening at GoodOffset drops the bad tail; appending and
			// replaying again must see old good batches plus the new one.
			var stats Stats
			l, err := Open(path, res.GoodOffset, Options{Policy: SyncAlways, Stats: &stats})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if _, err := l.AppendBatch(900, 0, []dynamic.Update{upd(1, 2, 3, false)}); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			res2, err := Replay(path, 0)
			if err != nil {
				t.Fatalf("second Replay: %v", err)
			}
			if res2.Torn {
				t.Fatal("log still torn after truncating reopen")
			}
			if len(res2.Batches) != tc.wantBatches+1 {
				t.Fatalf("after recovery append: %d batches, want %d", len(res2.Batches), tc.wantBatches+1)
			}
			if last := res2.Batches[len(res2.Batches)-1]; last.Seq != 900 {
				t.Fatalf("appended batch seq = %d", last.Seq)
			}
		})
	}
}

func TestRewindDropsRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, err := Open(path, -1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendBatch(1, 0, []dynamic.Update{upd(0, 1, 1, false)}); err != nil {
		t.Fatal(err)
	}
	off, err := l.AppendBatch(2, 0, []dynamic.Update{upd(1, 2, 1, false)})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Rewind(off); err != nil {
		t.Fatalf("Rewind: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 || res.Batches[0].Seq != 1 {
		t.Fatalf("rewind left %+v", res.Batches)
	}
}

func TestResetEmptiesLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	writeBatches(t, path, 3)
	l, err := Open(path, -1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.Size() != 0 {
		t.Fatalf("Size = %d after Reset", l.Size())
	}
	res, err := Replay(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 0 || res.LastEpoch != 0 {
		t.Fatalf("Reset left %+v", res)
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("never", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "w.wal")
		var stats Stats
		l, err := Open(path, -1, Options{Policy: SyncNever, Stats: &stats})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.AppendBatch(1, 0, nil); err != nil {
			t.Fatal(err)
		}
		if err := l.MaybeSync(); err != nil {
			t.Fatal(err)
		}
		if got := stats.Fsyncs.Load(); got != 0 {
			t.Fatalf("SyncNever fsynced %d times", got)
		}
		if l.Synced() {
			t.Fatal("dirty log reported synced")
		}
	})
	t.Run("always", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "w.wal")
		var stats Stats
		l, err := Open(path, -1, Options{Policy: SyncAlways, Stats: &stats})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.AppendBatch(1, 0, nil); err != nil {
			t.Fatal(err)
		}
		if err := l.MaybeSync(); err != nil {
			t.Fatal(err)
		}
		if got := stats.Fsyncs.Load(); got != 1 {
			t.Fatalf("fsyncs = %d, want 1", got)
		}
		if !l.Synced() {
			t.Fatal("synced log reported dirty")
		}
	})
}

func TestCrashBeforeFsyncPoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, err := Open(path, -1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendBatch(1, 0, nil); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable("wal.crash-before-fsync", faultinject.Fault{})
	t.Cleanup(faultinject.Reset)
	if err := l.Sync(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Sync = %v, want injected", err)
	}
	if l.Synced() {
		t.Fatal("failed sync must leave log dirty")
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("retry Sync: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in     string
		policy SyncPolicy
		ok     bool
	}{
		{"always", SyncAlways, true},
		{"", SyncAlways, true},
		{"never", SyncNever, true},
		{"interval:50ms", SyncInterval, true},
		{"interval:nope", 0, false},
		{"sometimes", 0, false},
	}
	for _, tc := range cases {
		p, _, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseSyncPolicy(%q) err = %v", tc.in, err)
		}
		if err == nil && p != tc.policy {
			t.Fatalf("ParseSyncPolicy(%q) = %v", tc.in, p)
		}
	}
}
