package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"graphreorder/internal/dynamic"
	"graphreorder/internal/graph"
)

// FuzzReplay feeds arbitrary bytes to the torn-tail-tolerant record
// reader. Replay must never panic, GoodOffset must mark a prefix of the
// input, and replaying exactly that prefix must be clean (no torn tail)
// and reproduce the same batches — the crash-recovery contract.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	seed := filepath.Join(f.TempDir(), "seed.wal")
	l, err := Open(seed, 0, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := l.AppendBatch(1, 2, []dynamic.Update{
		{Edge: graph.Edge{Src: 0, Dst: 1, Weight: 3}},
		{Remove: true, Edge: graph.Edge{Src: 1, Dst: 0}},
	}); err != nil {
		f.Fatal(err)
	}
	if err := l.AppendEpoch(7); err != nil {
		f.Fatal(err)
	}
	if _, err := l.AppendBatch(2, 0, []dynamic.Update{
		{Edge: graph.Edge{Src: 1, Dst: 1, Weight: 1}},
	}); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[12] ^= 0xff // corrupt a payload byte under the CRC
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Replay(path, 0)
		if err != nil {
			return
		}
		if res.GoodOffset < 0 || res.GoodOffset > int64(len(data)) {
			t.Fatalf("GoodOffset %d outside input [0,%d]", res.GoodOffset, len(data))
		}
		// The valid prefix must replay cleanly and identically: this is
		// exactly what crash recovery does before reopening the log.
		prefix := filepath.Join(dir, "prefix.wal")
		if err := os.WriteFile(prefix, data[:res.GoodOffset], 0o644); err != nil {
			t.Fatal(err)
		}
		res2, err := Replay(prefix, 0)
		if err != nil {
			t.Fatalf("replaying the valid prefix failed: %v", err)
		}
		if res2.Torn {
			t.Fatalf("valid prefix of length %d reported a torn tail", res.GoodOffset)
		}
		if res2.GoodOffset != res.GoodOffset || res2.Records != res.Records ||
			res2.LastEpoch != res.LastEpoch || !reflect.DeepEqual(res2.Batches, res.Batches) {
			t.Fatalf("replay of valid prefix diverged: %+v vs %+v", res2, res)
		}
	})
}
