// Package graph provides the Compressed Sparse Row (CSR) graph substrate
// that every other component of this repository builds on.
//
// A Graph stores a directed multigraph in CSR form twice: once over
// out-edges (for push-based computations) and once over in-edges (for
// pull-based computations), mirroring §II-B of the paper. Vertices are
// dense uint32 IDs in [0, N). Optional per-edge weights (used by SSSP) are
// kept aligned with both edge arrays.
//
// Graphs are immutable after construction; reordering produces a new Graph
// via Relabel.
package graph

import (
	"errors"
	"fmt"
)

// VertexID identifies a vertex. IDs are dense in [0, NumVertices).
type VertexID = uint32

// Edge is a directed edge with an optional weight (0 when unweighted).
type Edge struct {
	Src, Dst VertexID
	Weight   uint32
}

// Graph is an immutable directed multigraph in dual-CSR form.
type Graph struct {
	n int
	m int // number of directed edges

	// Out-CSR: outEdges[outIndex[v]:outIndex[v+1]] are v's out-neighbors.
	outIndex []uint64
	outEdges []VertexID

	// In-CSR: inEdges[inIndex[v]:inIndex[v+1]] are v's in-neighbors.
	inIndex []uint64
	inEdges []VertexID

	// Aligned weights; nil when the graph is unweighted.
	outWeights []uint32
	inWeights  []uint32
}

// NumVertices returns the number of vertices N.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges M.
func (g *Graph) NumEdges() int { return g.m }

// Weighted reports whether per-edge weights are present.
func (g *Graph) Weighted() bool { return g.outWeights != nil }

// AvgDegree returns the average degree M/N (0 for an empty graph).
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.outIndex[v+1] - g.outIndex[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VertexID) int {
	return int(g.inIndex[v+1] - g.inIndex[v])
}

// OutNeighbors returns v's out-neighbors as a shared sub-slice; callers
// must not modify it.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.outEdges[g.outIndex[v]:g.outIndex[v+1]]
}

// InNeighbors returns v's in-neighbors as a shared sub-slice; callers must
// not modify it.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	return g.inEdges[g.inIndex[v]:g.inIndex[v+1]]
}

// OutWeights returns the weights aligned with OutNeighbors(v), or nil for
// unweighted graphs.
func (g *Graph) OutWeights(v VertexID) []uint32 {
	if g.outWeights == nil {
		return nil
	}
	return g.outWeights[g.outIndex[v]:g.outIndex[v+1]]
}

// InWeights returns the weights aligned with InNeighbors(v), or nil for
// unweighted graphs.
func (g *Graph) InWeights(v VertexID) []uint32 {
	if g.inWeights == nil {
		return nil
	}
	return g.inWeights[g.inIndex[v]:g.inIndex[v+1]]
}

// OutIndex exposes the raw out-CSR offset array (length N+1). It is shared
// state: callers must treat it as read-only. Exposed for the trace engine,
// which models the exact memory layout of the Vertex Array.
func (g *Graph) OutIndex() []uint64 { return g.outIndex }

// InIndex exposes the raw in-CSR offset array (length N+1), read-only.
func (g *Graph) InIndex() []uint64 { return g.inIndex }

// OutEdgeArray exposes the raw out-edge array (length M), read-only.
func (g *Graph) OutEdgeArray() []VertexID { return g.outEdges }

// InEdgeArray exposes the raw in-edge array (length M), read-only.
func (g *Graph) InEdgeArray() []VertexID { return g.inEdges }

// Degrees returns a freshly allocated slice of degrees of the requested
// kind for all vertices.
func (g *Graph) Degrees(kind DegreeKind) []uint32 {
	d := make([]uint32, g.n)
	for v := 0; v < g.n; v++ {
		switch kind {
		case InDegree:
			d[v] = uint32(g.InDegree(VertexID(v)))
		case OutDegree:
			d[v] = uint32(g.OutDegree(VertexID(v)))
		case TotalDegree:
			d[v] = uint32(g.InDegree(VertexID(v)) + g.OutDegree(VertexID(v)))
		default:
			panic(fmt.Sprintf("graph: unknown DegreeKind %d", kind))
		}
	}
	return d
}

// MaxDegree returns the maximum degree of the requested kind (0 for an
// empty graph).
func (g *Graph) MaxDegree(kind DegreeKind) uint32 {
	var max uint32
	for _, d := range g.Degrees(kind) {
		if d > max {
			max = d
		}
	}
	return max
}

// DegreeKind selects which degree a computation is based on. The paper's
// Table VIII prescribes out-degree for pull-dominated applications and
// in-degree for push-dominated ones.
type DegreeKind uint8

const (
	// InDegree counts edges pointing at the vertex.
	InDegree DegreeKind = iota
	// OutDegree counts edges leaving the vertex.
	OutDegree
	// TotalDegree is the sum of in- and out-degree.
	TotalDegree
)

// String returns the lowercase name of the degree kind.
func (k DegreeKind) String() string {
	switch k {
	case InDegree:
		return "in"
	case OutDegree:
		return "out"
	case TotalDegree:
		return "total"
	default:
		return fmt.Sprintf("DegreeKind(%d)", uint8(k))
	}
}

// Edges materializes the edge list (src, dst, weight) in out-CSR order.
// Intended for tests and I/O, not hot paths.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for v := 0; v < g.n; v++ {
		nbrs := g.OutNeighbors(VertexID(v))
		ws := g.OutWeights(VertexID(v))
		for i, dst := range nbrs {
			e := Edge{Src: VertexID(v), Dst: dst}
			if ws != nil {
				e.Weight = ws[i]
			}
			edges = append(edges, e)
		}
	}
	return edges
}

// Validate checks internal CSR invariants. It returns nil for a
// well-formed graph and is used by tests and by the binary loader to
// reject corrupted files.
func (g *Graph) Validate() error {
	if g.n < 0 || g.m < 0 {
		return errors.New("graph: negative dimensions")
	}
	if len(g.outIndex) != g.n+1 || len(g.inIndex) != g.n+1 {
		return fmt.Errorf("graph: index arrays have lengths %d/%d, want %d",
			len(g.outIndex), len(g.inIndex), g.n+1)
	}
	if len(g.outEdges) != g.m || len(g.inEdges) != g.m {
		return fmt.Errorf("graph: edge arrays have lengths %d/%d, want %d",
			len(g.outEdges), len(g.inEdges), g.m)
	}
	if err := validateIndex(g.outIndex, g.m, "out"); err != nil {
		return err
	}
	if err := validateIndex(g.inIndex, g.m, "in"); err != nil {
		return err
	}
	for _, d := range g.outEdges {
		if int(d) >= g.n {
			return fmt.Errorf("graph: out-edge destination %d out of range [0,%d)", d, g.n)
		}
	}
	for _, s := range g.inEdges {
		if int(s) >= g.n {
			return fmt.Errorf("graph: in-edge source %d out of range [0,%d)", s, g.n)
		}
	}
	if (g.outWeights == nil) != (g.inWeights == nil) {
		return errors.New("graph: weight arrays inconsistently present")
	}
	if g.outWeights != nil && (len(g.outWeights) != g.m || len(g.inWeights) != g.m) {
		return fmt.Errorf("graph: weight arrays have lengths %d/%d, want %d",
			len(g.outWeights), len(g.inWeights), g.m)
	}
	return nil
}

func validateIndex(index []uint64, m int, name string) error {
	if index[0] != 0 {
		return fmt.Errorf("graph: %s-index[0] = %d, want 0", name, index[0])
	}
	for i := 1; i < len(index); i++ {
		if index[i] < index[i-1] {
			return fmt.Errorf("graph: %s-index not monotonic at %d", name, i)
		}
	}
	if index[len(index)-1] != uint64(m) {
		return fmt.Errorf("graph: %s-index[N] = %d, want %d", name, index[len(index)-1], m)
	}
	return nil
}
