package graph

import (
	"reflect"
	"testing"

	"graphreorder/internal/rng"
)

// randomEdges synthesizes a messy edge list: skewed degrees, duplicate
// parallel edges, self loops, optional weights — everything the builder
// has to preserve bit-identically across worker counts.
func randomEdges(n, m int, weighted bool, seed uint64) []Edge {
	r := rng.NewStream(seed, 0xE)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		src := VertexID(r.Intn(n))
		// Square the destination draw toward low IDs for skew.
		d1, d2 := r.Intn(n), r.Intn(n)
		dst := VertexID(min(d1, d2))
		e := Edge{Src: src, Dst: dst}
		if weighted {
			e.Weight = uint32(1 + r.Intn(100))
		}
		edges = append(edges, e)
		if i%17 == 0 { // sprinkle exact duplicates
			edges = append(edges, e)
		}
		if i%23 == 0 { // and self loops
			edges = append(edges, Edge{Src: src, Dst: src, Weight: e.Weight})
		}
	}
	return edges
}

func graphsEqual(t *testing.T, tag string, a, b *Graph) {
	t.Helper()
	if a.n != b.n || a.m != b.m {
		t.Fatalf("%s: dimensions (%d,%d) vs (%d,%d)", tag, a.n, a.m, b.n, b.m)
	}
	if !reflect.DeepEqual(a.outIndex, b.outIndex) {
		t.Errorf("%s: outIndex differs", tag)
	}
	if !reflect.DeepEqual(a.outEdges, b.outEdges) {
		t.Errorf("%s: outEdges differs", tag)
	}
	if !reflect.DeepEqual(a.inIndex, b.inIndex) {
		t.Errorf("%s: inIndex differs", tag)
	}
	if !reflect.DeepEqual(a.inEdges, b.inEdges) {
		t.Errorf("%s: inEdges differs", tag)
	}
	if !reflect.DeepEqual(a.outWeights, b.outWeights) {
		t.Errorf("%s: outWeights differs", tag)
	}
	if !reflect.DeepEqual(a.inWeights, b.inWeights) {
		t.Errorf("%s: inWeights differs", tag)
	}
}

// TestBuildParallelBitIdentical: the parallel count/prefix/scatter must
// reproduce the sequential counting sort exactly — including duplicate
// edge order and weight alignment — for every worker count and both
// neighbor-sort settings.
func TestBuildParallelBitIdentical(t *testing.T) {
	const n = 500
	for _, weighted := range []bool{false, true} {
		// Enough edges to clear parallelBuildThreshold so the parallel
		// path actually runs.
		edges := randomEdges(n, parallelBuildThreshold+2000, weighted, 0xC0)
		for _, sortNbrs := range []bool{false, true} {
			opts := BuildOptions{NumVertices: n, Weighted: weighted, SortNeighbors: sortNbrs, Workers: 1}
			seq, err := BuildWith(edges, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := seq.Validate(); err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 3, 7} {
				opts.Workers = w
				par, err := BuildWith(edges, opts)
				if err != nil {
					t.Fatal(err)
				}
				graphsEqual(t, "build", seq, par)
			}
		}
	}
}

// TestRelabelParallelBitIdentical: the direct CSR-to-CSR scatter must
// reproduce what the old edge-list rebuild produced, at every worker
// count, on weighted multigraphs with self loops.
func TestRelabelParallelBitIdentical(t *testing.T) {
	const n = 700
	for _, weighted := range []bool{false, true} {
		edges := randomEdges(n, parallelBuildThreshold+3000, weighted, 0xD1)
		g, err := BuildWith(edges, BuildOptions{NumVertices: n, Weighted: weighted, SortNeighbors: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Random permutation.
		perm := make([]VertexID, n)
		for i := range perm {
			perm[i] = VertexID(i)
		}
		r := rng.NewStream(5, 5)
		for i := n - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		want := relabelViaEdgeList(t, g, perm)
		for _, w := range []int{1, 2, 3, 8} {
			got, err := g.RelabelWorkers(perm, w)
			if err != nil {
				t.Fatal(err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			graphsEqual(t, "relabel", want, got)
		}
	}
}

// relabelViaEdgeList is the previous Relabel implementation (materialize
// the renamed edge list, rebuild sequentially), kept as the reference the
// direct scatter must match.
func relabelViaEdgeList(t *testing.T, g *Graph, newID []VertexID) *Graph {
	t.Helper()
	edges := make([]Edge, 0, g.m)
	for v := 0; v < g.n; v++ {
		nbrs := g.OutNeighbors(VertexID(v))
		ws := g.OutWeights(VertexID(v))
		for i, dst := range nbrs {
			e := Edge{Src: newID[v], Dst: newID[dst]}
			if ws != nil {
				e.Weight = ws[i]
			}
			edges = append(edges, e)
		}
	}
	ng, err := BuildWith(edges, BuildOptions{
		NumVertices: g.n, Weighted: g.Weighted(), SortNeighbors: false, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ng
}

func TestRelabelWorkersRejectsBadPermutation(t *testing.T) {
	g, err := Build([]Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RelabelWorkers([]VertexID{0, 1}, 2); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := g.RelabelWorkers([]VertexID{0, 0, 1}, 2); err == nil {
		t.Error("non-bijective permutation accepted")
	}
	if _, err := g.RelabelWorkers([]VertexID{0, 1, 3}, 2); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}
