package graph_test

import (
	"runtime"
	"testing"

	"graphreorder/internal/gen"
	"graphreorder/internal/graph"
	"graphreorder/internal/rng"
)

// CSR construction micro-benchmarks on the Small-scale skew dataset.
// seq pins one worker; par uses GOMAXPROCS (identical output either way —
// compare ns/op for the multicore speedup and B/op for the direct
// relabel's zero edge-list claim).

func benchEdges(b *testing.B) ([]graph.Edge, *graph.Graph) {
	b.Helper()
	g, err := gen.Generate(gen.MustDataset("sd", gen.Small))
	if err != nil {
		b.Fatal(err)
	}
	return g.Edges(), g
}

func BenchmarkBuildCSR(b *testing.B) {
	edges, g := benchEdges(b)
	opts := graph.BuildOptions{NumVertices: g.NumVertices(), SortNeighbors: true}
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			o := opts
			o.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graph.BuildWith(edges, o); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("seq", run(1))
	b.Run("par", run(runtime.GOMAXPROCS(0)))
}

func BenchmarkRelabel(b *testing.B) {
	_, g := benchEdges(b)
	n := g.NumVertices()
	perm := make([]graph.VertexID, n)
	for i := range perm {
		perm[i] = graph.VertexID(i)
	}
	r := rng.NewStream(11, 13)
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.RelabelWorkers(perm, workers); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("seq", run(1))
	b.Run("par", run(runtime.GOMAXPROCS(0)))
}
