package graph

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"slices"
	"strings"
	"testing"

	"graphreorder/internal/rng"
)

// randomEdges generates a reproducible multigraph edge list with self
// loops and duplicates, weighted or not.
func randomIOEdges(t *testing.T, seed uint64, n, m int, weighted bool) []Edge {
	t.Helper()
	r := rng.New(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Src: VertexID(r.Intn(n)), Dst: VertexID(r.Intn(n))}
		if weighted {
			edges[i].Weight = uint32(1 + r.Intn(63))
		}
	}
	return edges
}

func buildRandom(t *testing.T, seed uint64, n, m int, weighted bool) *Graph {
	t.Helper()
	g, err := BuildWith(randomIOEdges(t, seed, n, m, weighted), BuildOptions{
		NumVertices: n, Weighted: weighted, SortNeighbors: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// requireSameGraph asserts h is byte-for-byte the same CSR as g.
func requireSameGraph(t *testing.T, g, h *Graph, what string) {
	t.Helper()
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("%s: dimensions changed: %d/%d -> %d/%d",
			what, g.NumVertices(), g.NumEdges(), h.NumVertices(), h.NumEdges())
	}
	if !reflect.DeepEqual(g.OutIndex(), h.OutIndex()) ||
		!reflect.DeepEqual(g.OutEdgeArray(), h.OutEdgeArray()) {
		t.Fatalf("%s: out-CSR changed", what)
	}
	if !reflect.DeepEqual(g.InIndex(), h.InIndex()) ||
		!reflect.DeepEqual(g.InEdgeArray(), h.InEdgeArray()) {
		t.Fatalf("%s: in-CSR changed", what)
	}
	if !reflect.DeepEqual(g.Edges(), h.Edges()) {
		t.Fatalf("%s: edge list (with weights) changed", what)
	}
}

func TestBinaryRoundTripExact(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := buildRandom(t, 7, 64, 400, weighted)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		h, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		requireSameGraph(t, g, h, "binary round trip")
		if err := h.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTextToBinaryToTextRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		// Duplicate edges are removed: with parallel weighted edges the
		// neighbor sort's tie order is input-order dependent, so exact
		// round-tripping is only well-defined on simple adjacency lists.
		g, err := BuildWith(randomIOEdges(t, 11, 40, 200, weighted), BuildOptions{
			NumVertices: 40, Weighted: weighted, SortNeighbors: true, RemoveDuplicates: true,
		})
		if err != nil {
			t.Fatal(err)
		}

		// text -> graph -> binary -> graph -> text: both text forms equal.
		var text1 bytes.Buffer
		if err := WriteEdgeList(&text1, g); err != nil {
			t.Fatal(err)
		}
		edges, err := ReadEdgeList(bytes.NewReader(text1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		fromText, err := BuildWith(edges, BuildOptions{
			NumVertices: g.NumVertices(), Weighted: weighted, SortNeighbors: true, RemoveDuplicates: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireSameGraph(t, g, fromText, "text round trip")

		var bin bytes.Buffer
		if err := WriteBinary(&bin, fromText); err != nil {
			t.Fatal(err)
		}
		fromBin, err := ReadBinary(&bin)
		if err != nil {
			t.Fatal(err)
		}
		var text2 bytes.Buffer
		if err := WriteEdgeList(&text2, fromBin); err != nil {
			t.Fatal(err)
		}
		if text1.String() != text2.String() {
			t.Fatal("text -> binary -> text round trip changed the edge list")
		}
	}
}

func TestReadAutoSniffsFormats(t *testing.T) {
	g := buildRandom(t, 3, 32, 100, true)

	var bin bytes.Buffer
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	h, format, err := ReadAuto(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if format != FormatBinary {
		t.Fatalf("binary input detected as %v", format)
	}
	requireSameGraph(t, g, h, "ReadAuto binary")

	var text bytes.Buffer
	if err := WriteEdgeList(&text, g); err != nil {
		t.Fatal(err)
	}
	h, format, err = ReadAuto(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if format != FormatText {
		t.Fatalf("text input detected as %v", format)
	}
	requireSameGraph(t, g, h, "ReadAuto text")
}

func TestReadAutoShortAndEmptyInputs(t *testing.T) {
	// Inputs shorter than the 8-byte magic must fall through to the text
	// parser, not error out of the sniffer.
	g, format, err := ReadAuto(strings.NewReader("1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if format != FormatText || g.NumEdges() != 1 {
		t.Fatalf("short text input: format=%v edges=%d", format, g.NumEdges())
	}
	g, format, err = ReadAuto(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if format != FormatText || g.NumVertices() != 0 {
		t.Fatalf("empty input: format=%v n=%d", format, g.NumVertices())
	}
}

func TestReadBinaryCorruptHeader(t *testing.T) {
	g := buildRandom(t, 5, 16, 40, false)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(mutate func(b []byte)) []byte {
		b := bytes.Clone(good)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"bad magic":   corrupt(func(b []byte) { b[0] ^= 0xff }),
		"bad version": corrupt(func(b []byte) { b[8] = 0x7f }),
		"giant n": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint64(b[16:], 1<<40)
		}),
		"giant m": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint64(b[24:], 1<<40)
		}),
		"non-monotonic index": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint64(b[40+8:], ^uint64(0)>>1)
		}),
		"edge out of range": corrupt(func(b []byte) {
			idxBytes := (g.NumVertices() + 1) * 8
			binary.LittleEndian.PutUint32(b[40+idxBytes:], uint32(g.NumVertices()+5))
		}),
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	g := buildRandom(t, 9, 32, 200, true)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Cut in the header, in the index array, in the edge array, and in the
	// weight array.
	idxEnd := 40 + (g.NumVertices()+1)*8
	edgeEnd := idxEnd + g.NumEdges()*4
	for _, cut := range []int{0, 7, 39, idxEnd - 3, edgeEnd - 3, len(good) - 1} {
		if _, err := ReadBinary(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncated at %d/%d bytes: accepted", cut, len(good))
		}
	}
}

func TestReadBinaryPreservesAdjacencyOrder(t *testing.T) {
	// Relabel does not re-sort adjacency lists; the loader must round-trip
	// that layout untouched rather than sorting it back.
	g := buildRandom(t, 13, 48, 300, true)
	perm := make([]VertexID, g.NumVertices())
	for i := range perm {
		perm[i] = VertexID(g.NumVertices() - 1 - i)
	}
	rel, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, rel); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The out-CSR (the bytes on the wire) must round-trip exactly. The
	// in-CSR is derived on load in canonical source-ascending order, which
	// may differ from Relabel's scatter order, so compare it per vertex as
	// a sorted multiset.
	if !reflect.DeepEqual(rel.OutIndex(), h.OutIndex()) ||
		!reflect.DeepEqual(rel.OutEdgeArray(), h.OutEdgeArray()) ||
		!reflect.DeepEqual(rel.Edges(), h.Edges()) {
		t.Fatal("relabeled round trip changed the out-CSR")
	}
	if !reflect.DeepEqual(rel.InIndex(), h.InIndex()) {
		t.Fatal("relabeled round trip changed the in-index")
	}
	for v := 0; v < rel.NumVertices(); v++ {
		want := slices.Sorted(slices.Values(rel.InNeighbors(VertexID(v))))
		got := slices.Sorted(slices.Values(h.InNeighbors(VertexID(v))))
		if !slices.Equal(want, got) {
			t.Fatalf("vertex %d: in-neighbor multiset changed", v)
		}
	}
}
