package graph

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"graphreorder/internal/rng"
)

// paperExample is the graph of Fig. 1(a): in-edges per vertex encoded as
// edge list (src -> dst).
func paperExample(t *testing.T) *Graph {
	t.Helper()
	edges := []Edge{
		{Src: 3, Dst: 0},
		{Src: 2, Dst: 1}, {Src: 0, Dst: 1}, {Src: 5, Dst: 1},
		{Src: 1, Dst: 2}, {Src: 5, Dst: 2},
		{Src: 4, Dst: 3}, {Src: 5, Dst: 3}, {Src: 2, Dst: 3},
		{Src: 5, Dst: 4},
	}
	g, err := Build(edges)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildPaperExample(t *testing.T) {
	g := paperExample(t)
	if g.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d, want 6", g.NumVertices())
	}
	if g.NumEdges() != 10 {
		t.Fatalf("NumEdges = %d, want 10", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Fig. 1(b): in-neighbor index is [0 1 4 6 9 10 10].
	wantIndex := []uint64{0, 1, 4, 6, 9, 10, 10}
	if !reflect.DeepEqual(g.InIndex(), wantIndex) {
		t.Errorf("InIndex = %v, want %v", g.InIndex(), wantIndex)
	}
	// In-neighbors of vertex 3 are {4, 5, 2} (sorted: 2,4,5).
	if got := g.InNeighbors(3); !reflect.DeepEqual(got, []VertexID{2, 4, 5}) {
		t.Errorf("InNeighbors(3) = %v, want [2 4 5]", got)
	}
	// Out-degree reuse property from Fig. 1(b): vertices 2 and 5 are hot.
	if g.OutDegree(5) != 4 || g.OutDegree(2) != 2 {
		t.Errorf("OutDegree(5)=%d OutDegree(2)=%d, want 4 and 2",
			g.OutDegree(5), g.OutDegree(2))
	}
}

func TestDegreesAndKinds(t *testing.T) {
	g := paperExample(t)
	in := g.Degrees(InDegree)
	out := g.Degrees(OutDegree)
	tot := g.Degrees(TotalDegree)
	for v := 0; v < g.NumVertices(); v++ {
		if tot[v] != in[v]+out[v] {
			t.Errorf("vertex %d: total %d != in %d + out %d", v, tot[v], in[v], out[v])
		}
	}
	sumIn, sumOut := 0, 0
	for v := range in {
		sumIn += int(in[v])
		sumOut += int(out[v])
	}
	if sumIn != g.NumEdges() || sumOut != g.NumEdges() {
		t.Errorf("degree sums %d/%d, want %d", sumIn, sumOut, g.NumEdges())
	}
	if g.MaxDegree(OutDegree) != 4 {
		t.Errorf("MaxDegree(out) = %d, want 4", g.MaxDegree(OutDegree))
	}
}

func TestDegreeKindString(t *testing.T) {
	if InDegree.String() != "in" || OutDegree.String() != "out" || TotalDegree.String() != "total" {
		t.Error("DegreeKind String() mismatch")
	}
}

func TestBuildEmpty(t *testing.T) {
	g, err := Build(nil)
	if err != nil {
		t.Fatalf("Build(nil): %v", err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuildSingleVertexSelfLoop(t *testing.T) {
	g, err := Build([]Edge{{Src: 0, Dst: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1 || g.NumEdges() != 1 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	g2, err := BuildWith([]Edge{{Src: 0, Dst: 0}}, BuildOptions{RemoveSelfLoops: true, NumVertices: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 0 {
		t.Errorf("self-loop not removed: %d edges", g2.NumEdges())
	}
}

func TestBuildRemoveDuplicates(t *testing.T) {
	edges := []Edge{{0, 1, 5}, {0, 1, 9}, {1, 0, 1}, {0, 1, 7}}
	g, err := BuildWith(edges, BuildOptions{RemoveDuplicates: true, Weighted: true, SortNeighbors: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	// First weight wins.
	if ws := g.OutWeights(0); len(ws) != 1 || ws[0] != 5 {
		t.Errorf("OutWeights(0) = %v, want [5]", ws)
	}
}

func TestBuildNumVerticesTooSmall(t *testing.T) {
	_, err := BuildWith([]Edge{{Src: 0, Dst: 9}}, BuildOptions{NumVertices: 5})
	if err == nil {
		t.Fatal("expected error for endpoint exceeding NumVertices")
	}
}

func TestBuildIsolatedVertices(t *testing.T) {
	g, err := BuildWith([]Edge{{Src: 0, Dst: 1}}, BuildOptions{NumVertices: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
	for v := 2; v < 10; v++ {
		if g.OutDegree(VertexID(v)) != 0 || g.InDegree(VertexID(v)) != 0 {
			t.Errorf("vertex %d should be isolated", v)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := paperExample(t)
	tt := g.Transpose().Transpose()
	if !reflect.DeepEqual(edgeSet(g), edgeSet(tt)) {
		t.Error("double transpose changed edge set")
	}
	tr := g.Transpose()
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(VertexID(v)) != tr.InDegree(VertexID(v)) {
			t.Errorf("vertex %d: out-degree %d != transposed in-degree %d",
				v, g.OutDegree(VertexID(v)), tr.InDegree(VertexID(v)))
		}
	}
}

// edgeSet returns a canonical sorted edge multiset representation.
func edgeSet(g *Graph) []Edge {
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		if es[i].Dst != es[j].Dst {
			return es[i].Dst < es[j].Dst
		}
		return es[i].Weight < es[j].Weight
	})
	return es
}

func TestRelabelIdentity(t *testing.T) {
	g := paperExample(t)
	id := make([]VertexID, g.NumVertices())
	for i := range id {
		id[i] = VertexID(i)
	}
	h, err := g.Relabel(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(edgeSet(g), edgeSet(h)) {
		t.Error("identity relabel changed the graph")
	}
}

func TestRelabelRejectsNonPermutation(t *testing.T) {
	g := paperExample(t)
	bad := []VertexID{0, 0, 1, 2, 3, 4}
	if _, err := g.Relabel(bad); err == nil {
		t.Error("duplicate mapping accepted")
	}
	short := []VertexID{0, 1}
	if _, err := g.Relabel(short); err == nil {
		t.Error("short mapping accepted")
	}
	outOfRange := []VertexID{0, 1, 2, 3, 4, 99}
	if _, err := g.Relabel(outOfRange); err == nil {
		t.Error("out-of-range mapping accepted")
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	// Property: relabeling preserves the degree multiset and the edge
	// multiset up to renaming.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		var edges []Edge
		m := r.Intn(120)
		for i := 0; i < m; i++ {
			edges = append(edges, Edge{
				Src:    VertexID(r.Intn(n)),
				Dst:    VertexID(r.Intn(n)),
				Weight: uint32(r.Intn(100)),
			})
		}
		g, err := BuildWith(edges, BuildOptions{NumVertices: n, Weighted: true, SortNeighbors: true})
		if err != nil {
			return false
		}
		perm := r.Perm(n)
		h, err := g.Relabel(perm)
		if err != nil {
			return false
		}
		if h.Validate() != nil {
			return false
		}
		// Degree multiset preserved.
		gd, hd := g.Degrees(TotalDegree), h.Degrees(TotalDegree)
		sort.Slice(gd, func(i, j int) bool { return gd[i] < gd[j] })
		sort.Slice(hd, func(i, j int) bool { return hd[i] < hd[j] })
		if !reflect.DeepEqual(gd, hd) {
			return false
		}
		// Edge multiset preserved under the mapping.
		want := make(map[Edge]int)
		for _, e := range g.Edges() {
			want[Edge{Src: perm[e.Src], Dst: perm[e.Dst], Weight: e.Weight}]++
		}
		for _, e := range h.Edges() {
			want[e]--
		}
		for _, c := range want {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadEdgeListValid(t *testing.T) {
	in := "# comment\n% also comment\n0 1\n1 2 7\n\n2 0\n"
	edges, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{0, 1, 0}, {1, 2, 7}, {2, 0, 0}}
	if !reflect.DeepEqual(edges, want) {
		t.Errorf("got %v, want %v", edges, want)
	}
}

func TestReadEdgeListMalformed(t *testing.T) {
	cases := []string{
		"0\n",                      // too few fields
		"0 1 2 3\n",                // too many fields
		"a b\n",                    // non-numeric
		"0 -1\n",                   // negative
		"0 99999999999999999999\n", // overflow
		"1 2 x\n",                  // bad weight
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: expected parse error", c)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := paperExample(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	edges, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(edges)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(edgeSet(g), edgeSet(h)) {
		t.Error("edge-list round trip changed the graph")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		r := rng.New(99)
		n := 50
		var edges []Edge
		for i := 0; i < 300; i++ {
			e := Edge{Src: VertexID(r.Intn(n)), Dst: VertexID(r.Intn(n))}
			if weighted {
				e.Weight = uint32(1 + r.Intn(63))
			}
			edges = append(edges, e)
		}
		g, err := BuildWith(edges, BuildOptions{NumVertices: n, Weighted: weighted, SortNeighbors: true})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		h, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(edgeSet(g), edgeSet(h)) {
			t.Errorf("binary round trip (weighted=%v) changed the graph", weighted)
		}
		if h.Weighted() != weighted {
			t.Errorf("weighted flag lost: got %v want %v", h.Weighted(), weighted)
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a graph"),
		bytes.Repeat([]byte{0xff}, 64),
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestReadBinaryRejectsWrongVersion(t *testing.T) {
	g := paperExample(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8] = 0xFE // clobber version field
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := paperExample(t)
	g.outIndex[2] = g.outIndex[3] + 5 // break monotonicity
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted non-monotonic index")
	}
}

func TestWeightsAlignedAcrossCSRs(t *testing.T) {
	edges := []Edge{{0, 1, 10}, {2, 1, 20}, {1, 0, 30}}
	g, err := BuildWith(edges, BuildOptions{NumVertices: 3, Weighted: true, SortNeighbors: true})
	if err != nil {
		t.Fatal(err)
	}
	// In-neighbors of 1 are {0, 2} with weights {10, 20}.
	nbrs, ws := g.InNeighbors(1), g.InWeights(1)
	for i, src := range nbrs {
		var want uint32
		switch src {
		case 0:
			want = 10
		case 2:
			want = 20
		}
		if ws[i] != want {
			t.Errorf("in-weight for edge %d->1: got %d want %d", src, ws[i], want)
		}
	}
}
