package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"testing"

	"graphreorder/internal/rng"
)

// benchGraph builds a power-law-ish multigraph big enough for codec
// throughput to dominate fixed costs (~64K vertices, ~1M edges).
func benchGraph(b *testing.B, weighted bool) *Graph {
	b.Helper()
	const n = 1 << 16
	const m = 1 << 20
	r := rng.New(42)
	edges := make([]Edge, m)
	for i := range edges {
		// Zipf-like sources concentrate edges on hubs, as in real datasets.
		src := VertexID(r.Zipf(n, 1.1))
		dst := VertexID(r.Intn(n))
		edges[i] = Edge{Src: src, Dst: dst}
		if weighted {
			edges[i].Weight = uint32(1 + r.Intn(63))
		}
	}
	g, err := BuildWith(edges, BuildOptions{NumVertices: n, Weighted: weighted, SortNeighbors: true})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkWriteBinary(b *testing.B) {
	g := benchGraph(b, true)
	for _, bench := range []struct {
		name string
		fn   func(io.Writer, *Graph) error
	}{
		{"direct", WriteBinary},
		{"legacy", legacyWriteBinary},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var buf bytes.Buffer
			if err := bench.fn(&buf, g); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := bench.fn(&buf, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReadBinary(b *testing.B) {
	g := benchGraph(b, true)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, bench := range []struct {
		name string
		fn   func(io.Reader) (*Graph, error)
	}{
		{"direct", ReadBinary},
		{"legacy", legacyReadBinary},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.fn(bytes.NewReader(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestLegacyCodecAgreesWithDirect(t *testing.T) {
	// The legacy codec below is the benchmark baseline; keep it honest.
	g := buildRandom(t, 21, 64, 400, true)
	var direct, legacy bytes.Buffer
	if err := WriteBinary(&direct, g); err != nil {
		t.Fatal(err)
	}
	if err := legacyWriteBinary(&legacy, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), legacy.Bytes()) {
		t.Fatal("direct and legacy writers disagree on the wire format")
	}
	h, err := legacyReadBinary(bytes.NewReader(direct.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatal("legacy reader mangled dimensions")
	}
}

// legacyWriteBinary is the pre-optimization writer: binary.Write per
// slice, which stages the whole slice into a freshly allocated buffer on
// every call. Kept here as the benchmark baseline.
func legacyWriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binaryMagic, binaryVersion, uint64(g.n), uint64(g.m)}
	flags := uint64(0)
	if g.Weighted() {
		flags = 1
	}
	hdr = append(hdr, flags)
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outIndex); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outEdges); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.outWeights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// legacyReadBinary is the pre-optimization loader: binary.Read per slice
// plus a full edge-list materialization and builder re-run (including the
// neighbor sort). Kept here as the benchmark baseline.
func legacyReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, errors.New("graph: bad magic; not a graph binary")
	}
	if hdr[1] != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", hdr[1])
	}
	n, m, flags := int(hdr[2]), int(hdr[3]), hdr[4]
	if n < 0 || m < 0 || n > 1<<31 || m > 1<<38 {
		return nil, fmt.Errorf("graph: implausible dimensions n=%d m=%d", n, m)
	}
	outIndex := make([]uint64, n+1)
	if err := binary.Read(br, binary.LittleEndian, outIndex); err != nil {
		return nil, fmt.Errorf("graph: reading index: %w", err)
	}
	outEdges := make([]VertexID, m)
	if err := binary.Read(br, binary.LittleEndian, outEdges); err != nil {
		return nil, fmt.Errorf("graph: reading edges: %w", err)
	}
	var outWeights []uint32
	if flags&1 != 0 {
		outWeights = make([]uint32, m)
		if err := binary.Read(br, binary.LittleEndian, outWeights); err != nil {
			return nil, fmt.Errorf("graph: reading weights: %w", err)
		}
	}
	edges := make([]Edge, m)
	v := 0
	for i := 0; i < m; i++ {
		for uint64(i) >= outIndex[v+1] {
			v++
			if v >= n {
				return nil, errors.New("graph: corrupt index array")
			}
		}
		if int(outEdges[i]) >= n {
			return nil, fmt.Errorf("graph: edge destination %d out of range", outEdges[i])
		}
		edges[i] = Edge{Src: VertexID(v), Dst: outEdges[i]}
		if outWeights != nil {
			edges[i].Weight = outWeights[i]
		}
	}
	g, err := BuildWith(edges, BuildOptions{
		NumVertices:   n,
		Weighted:      outWeights != nil,
		SortNeighbors: true,
	})
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
