package graph

import (
	"fmt"
	"slices"
	"sort"
)

// BuildOptions controls edge-list to CSR conversion.
type BuildOptions struct {
	// NumVertices fixes N. If 0, N is 1 + the maximum vertex ID seen
	// (0 for an empty edge list).
	NumVertices int
	// RemoveSelfLoops drops edges with Src == Dst.
	RemoveSelfLoops bool
	// RemoveDuplicates keeps a single copy of parallel edges (same
	// src, dst); the first weight wins.
	RemoveDuplicates bool
	// Weighted records edge weights; when false weights are discarded.
	Weighted bool
	// SortNeighbors sorts each adjacency list by neighbor ID, the layout
	// real CSR toolchains (GAP, Ligra) produce. Defaults to true in Build.
	SortNeighbors bool
	// Workers is the number of goroutines CSR construction may use: 0 or 1
	// (the zero value) pins the sequential path, negative means GOMAXPROCS,
	// and every parallel request is capped at 16 because each build worker
	// carries an O(N) counting array. Parallel builds are bit-identical to
	// sequential ones (count/prefix/scatter over contiguous edge chunks
	// preserves edge order per vertex), so opting in changes timing and
	// transient memory only.
	Workers int
}

// Build converts an edge list to a dual-CSR Graph with neighbor lists
// sorted, self-loops and duplicates retained, and weights kept only if any
// edge has a nonzero weight.
func Build(edges []Edge) (*Graph, error) {
	weighted := false
	for _, e := range edges {
		if e.Weight != 0 {
			weighted = true
			break
		}
	}
	return BuildWith(edges, BuildOptions{Weighted: weighted, SortNeighbors: true})
}

// BuildWith converts an edge list to a dual-CSR Graph under opts.
func BuildWith(edges []Edge, opts BuildOptions) (*Graph, error) {
	n := opts.NumVertices
	for _, e := range edges {
		if int(e.Src) >= n {
			n = int(e.Src) + 1
		}
		if int(e.Dst) >= n {
			n = int(e.Dst) + 1
		}
	}
	if opts.NumVertices != 0 && n > opts.NumVertices {
		return nil, fmt.Errorf("graph: edge endpoint exceeds NumVertices=%d", opts.NumVertices)
	}

	if opts.RemoveSelfLoops {
		kept := edges[:0:0] // fresh backing array; edges arg stays intact
		for _, e := range edges {
			if e.Src != e.Dst {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	if opts.RemoveDuplicates {
		edges = dedupEdges(edges)
	}

	workers := buildWorkers(opts.Workers, len(edges))
	g := &Graph{n: n, m: len(edges)}
	if workers > 1 {
		g.outIndex, g.outEdges, g.outWeights = buildCSRPar(edges, n, opts.Weighted, false, opts.SortNeighbors, workers)
		g.inIndex, g.inEdges, g.inWeights = buildCSRPar(edges, n, opts.Weighted, true, opts.SortNeighbors, workers)
	} else {
		g.outIndex, g.outEdges, g.outWeights = buildCSR(edges, n, opts.Weighted, false, opts.SortNeighbors)
		g.inIndex, g.inEdges, g.inWeights = buildCSR(edges, n, opts.Weighted, true, opts.SortNeighbors)
	}
	return g, nil
}

// buildCSR lays out one direction of the CSR with a counting sort. When
// reverse is true the in-CSR is built (keyed by Dst, storing Src). The
// parallel counterpart is buildCSRPar.
func buildCSR(edges []Edge, n int, weighted, reverse, sortNbrs bool) ([]uint64, []VertexID, []uint32) {
	index := make([]uint64, n+1)
	for _, e := range edges {
		key := e.Src
		if reverse {
			key = e.Dst
		}
		index[key+1]++
	}
	for i := 1; i <= n; i++ {
		index[i] += index[i-1]
	}

	adj := make([]VertexID, len(edges))
	var ws []uint32
	if weighted {
		ws = make([]uint32, len(edges))
	}
	cursor := make([]uint64, n)
	copy(cursor, index[:n])
	for _, e := range edges {
		key, val := e.Src, e.Dst
		if reverse {
			key, val = e.Dst, e.Src
		}
		pos := cursor[key]
		cursor[key]++
		adj[pos] = val
		if weighted {
			ws[pos] = e.Weight
		}
	}

	if sortNbrs {
		for v := 0; v < n; v++ {
			lo, hi := index[v], index[v+1]
			if hi-lo < 2 {
				continue
			}
			seg := adj[lo:hi]
			if ws == nil {
				slices.Sort(seg)
			} else {
				wseg := ws[lo:hi]
				sort.Sort(&nbrWeightSort{seg, wseg})
			}
		}
	}
	return index, adj, ws
}

type nbrWeightSort struct {
	nbrs []VertexID
	ws   []uint32
}

func (s *nbrWeightSort) Len() int           { return len(s.nbrs) }
func (s *nbrWeightSort) Less(i, j int) bool { return s.nbrs[i] < s.nbrs[j] }
func (s *nbrWeightSort) Swap(i, j int) {
	s.nbrs[i], s.nbrs[j] = s.nbrs[j], s.nbrs[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}

func dedupEdges(edges []Edge) []Edge {
	seen := make(map[uint64]struct{}, len(edges))
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		key := uint64(e.Src)<<32 | uint64(e.Dst)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, e)
	}
	return out
}

// Relabel applies a vertex permutation and returns the relabeled graph.
// newID[v] is the new ID of original vertex v; newID must be a bijection on
// [0, N). Edges are rewritten as (newID[src] -> newID[dst]) and both CSRs
// are rebuilt so arrays are physically laid out in new-ID order — exactly
// the "reorder vertices in memory" step of the paper (§II-E).
//
// The rebuild scatters straight from the old CSR into the new one (no
// intermediate edge list — the former implementation generated 16 bytes
// of garbage per edge per reorder) and runs sequentially, keeping
// measured rebuild times host-independent; RelabelWorkers opts into the
// multicore rebuild (bit-identical output). Adjacency lists are
// deliberately NOT re-sorted: no algorithm in this repository depends on
// neighbor order, and the per-vertex sort would roughly double the CSR
// rebuild that already dominates reordering cost (Table XI / Fig. 10
// accounting).
func (g *Graph) Relabel(newID []VertexID) (*Graph, error) {
	return g.RelabelWorkers(newID, 1)
}

// Transpose returns the graph with every edge reversed. In- and out-CSRs
// swap roles, so this is O(1) apart from struct copying.
func (g *Graph) Transpose() *Graph {
	return &Graph{
		n:          g.n,
		m:          g.m,
		outIndex:   g.inIndex,
		outEdges:   g.inEdges,
		outWeights: g.inWeights,
		inIndex:    g.outIndex,
		inEdges:    g.outEdges,
		inWeights:  g.outWeights,
	}
}
