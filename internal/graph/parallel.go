package graph

import (
	"fmt"
	"slices"
	"sort"

	"graphreorder/internal/par"
)

// Parallel CSR construction and relabeling, following the count/prefix/
// scatter pattern of internal/reorder.ParallelDBG: workers own contiguous
// input chunks, a sequential prefix pass turns per-(chunk, key) counts
// into scatter offsets, and because chunk order preserves input order the
// output is bit-identical to the sequential construction.

// parallelBuildThreshold is the edge count below which goroutine fan-out
// costs more than it saves and construction stays sequential.
const parallelBuildThreshold = 1 << 13

// maxBuildWorkers bounds CSR-construction parallelism regardless of the
// request: each build worker carries an O(N) uint64 counting array, so an
// uncapped many-core host would balloon transient memory.
const maxBuildWorkers = 16

// buildWorkers normalizes a requested worker count for CSR construction:
// 0 or 1 pins the sequential path (the zero value means sequential
// everywhere in this repository), negative means GOMAXPROCS, and every
// parallel request is capped at maxBuildWorkers. Tiny inputs always run
// sequentially.
func buildWorkers(requested, numEdges int) int {
	if numEdges < parallelBuildThreshold || requested == 0 || requested == 1 {
		return 1
	}
	w := requested
	if w < 0 {
		w = par.Resolve(w)
	}
	if w > maxBuildWorkers {
		w = maxBuildWorkers
	}
	return w
}

// evenBounds splits [0, n) into parts equal contiguous ranges.
func evenBounds(n, parts int) []int {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	bounds := make([]int, parts+1)
	for c := 0; c <= parts; c++ {
		bounds[c] = c * n / parts
	}
	return bounds
}

// buildCSRPar is the parallel counterpart of buildCSR: per-chunk counting,
// a sequential prefix pass over (key-major, chunk-minor), and a parallel
// scatter replaying each chunk against its own cursor array.
func buildCSRPar(edges []Edge, n int, weighted, reverse, sortNbrs bool, workers int) ([]uint64, []VertexID, []uint32) {
	bounds := evenBounds(len(edges), workers)
	numChunks := len(bounds) - 1

	counts := make([][]uint64, numChunks)
	par.For(numChunks, workers, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			cnt := make([]uint64, n)
			for _, e := range edges[bounds[c]:bounds[c+1]] {
				key := e.Src
				if reverse {
					key = e.Dst
				}
				cnt[key]++
			}
			counts[c] = cnt
		}
	})

	// Prefix over (key-major, chunk-minor): chunk c's cursor for key k
	// starts after all edges of earlier keys plus earlier chunks of k,
	// which is exactly the position the sequential counting sort assigns.
	index := make([]uint64, n+1)
	var running uint64
	for k := 0; k < n; k++ {
		index[k] = running
		for c := 0; c < numChunks; c++ {
			cnt := counts[c][k]
			counts[c][k] = running
			running += cnt
		}
	}
	index[n] = running

	adj := make([]VertexID, len(edges))
	var ws []uint32
	if weighted {
		ws = make([]uint32, len(edges))
	}
	par.For(numChunks, workers, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			cursor := counts[c]
			for _, e := range edges[bounds[c]:bounds[c+1]] {
				key, val := e.Src, e.Dst
				if reverse {
					key, val = e.Dst, e.Src
				}
				pos := cursor[key]
				cursor[key]++
				adj[pos] = val
				if weighted {
					ws[pos] = e.Weight
				}
			}
		}
	})

	if sortNbrs {
		sortAdjacency(index, adj, ws, n, workers)
	}
	return index, adj, ws
}

// sortAdjacency sorts each vertex's neighbor segment in place,
// parallelized over edge-balanced vertex ranges.
func sortAdjacency(index []uint64, adj []VertexID, ws []uint32, n, workers int) {
	vb := par.BalancedBounds(index, n, workers*4, 1)
	par.ForBounds(vb, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			s, e := index[v], index[v+1]
			if e-s < 2 {
				continue
			}
			seg := adj[s:e]
			if ws == nil {
				slices.Sort(seg)
			} else {
				wseg := ws[s:e]
				sort.Sort(&nbrWeightSort{seg, wseg})
			}
		}
	})
}

// RelabelWorkers is Relabel with an explicit worker count, following the
// same rules as BuildOptions.Workers: 0 or 1 sequential, negative means
// GOMAXPROCS, parallel requests capped at 16, small graphs always
// sequential. Both paths scatter directly from the old CSR into the new
// one — no intermediate edge list is materialized — and every worker
// count yields the same graph the sequential edge-list rebuild used to
// produce.
func (g *Graph) RelabelWorkers(newID []VertexID, workers int) (*Graph, error) {
	if len(newID) != g.n {
		return nil, fmt.Errorf("graph: permutation has length %d, want %d", len(newID), g.n)
	}
	seen := make([]bool, g.n)
	for _, id := range newID {
		if int(id) >= g.n || seen[id] {
			return nil, fmt.Errorf("graph: newID is not a permutation (value %d)", id)
		}
		seen[id] = true
	}
	workers = buildWorkers(workers, g.m)
	n, m := g.n, g.m
	ng := &Graph{n: n, m: m}
	weighted := g.Weighted()

	// Out-CSR. The new adjacency list of newID[v] is exactly old v's list
	// with endpoints renamed, so each old vertex owns a disjoint output
	// segment: scatter degrees, prefix, then copy segments in parallel.
	outIndex := make([]uint64, n+1)
	par.For(n, workers, 1, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			outIndex[newID[v]+1] = uint64(g.OutDegree(VertexID(v)))
		}
	})
	for i := 1; i <= n; i++ {
		outIndex[i] += outIndex[i-1]
	}
	outEdges := make([]VertexID, m)
	var outWs []uint32
	if weighted {
		outWs = make([]uint32, m)
	}
	outBounds := par.BalancedBounds(g.outIndex, n, workers*4, 1)
	par.ForBounds(outBounds, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			base := outIndex[newID[v]]
			nbrs := g.OutNeighbors(VertexID(v))
			ws := g.OutWeights(VertexID(v))
			for i, dst := range nbrs {
				outEdges[base+uint64(i)] = newID[dst]
				if ws != nil {
					outWs[base+uint64(i)] = ws[i]
				}
			}
		}
	})
	ng.outIndex, ng.outEdges, ng.outWeights = outIndex, outEdges, outWs

	// In-CSR: a counting sort keyed by newID[dst] over the edges in old
	// out-CSR enumeration order — the same order the sequential rebuild
	// fed to its counting sort, so in-neighbor lists come out identical.
	// Chunks are contiguous old-vertex ranges, balanced by out-edge count.
	inBounds := par.BalancedBounds(g.outIndex, n, workers, 1)
	numChunks := len(inBounds) - 1
	counts := make([][]uint64, numChunks)
	par.ForChunks(numChunks, workers, 1, func(_, clo, chi int) {
		for c := clo; c < chi; c++ {
			cnt := make([]uint64, n)
			for v := inBounds[c]; v < inBounds[c+1]; v++ {
				for _, dst := range g.OutNeighbors(VertexID(v)) {
					cnt[newID[dst]]++
				}
			}
			counts[c] = cnt
		}
	})
	inIndex := make([]uint64, n+1)
	var running uint64
	for k := 0; k < n; k++ {
		inIndex[k] = running
		for c := 0; c < numChunks; c++ {
			cnt := counts[c][k]
			counts[c][k] = running
			running += cnt
		}
	}
	inIndex[n] = running
	inEdges := make([]VertexID, m)
	var inWs []uint32
	if weighted {
		inWs = make([]uint32, m)
	}
	par.ForChunks(numChunks, workers, 1, func(_, clo, chi int) {
		for c := clo; c < chi; c++ {
			cursor := counts[c]
			for v := inBounds[c]; v < inBounds[c+1]; v++ {
				nv := newID[v]
				nbrs := g.OutNeighbors(VertexID(v))
				ws := g.OutWeights(VertexID(v))
				for i, dst := range nbrs {
					k := newID[dst]
					pos := cursor[k]
					cursor[k]++
					inEdges[pos] = nv
					if ws != nil {
						inWs[pos] = ws[i]
					}
				}
			}
		}
	})
	ng.inIndex, ng.inEdges, ng.inWeights = inIndex, inEdges, inWs
	return ng, nil
}
