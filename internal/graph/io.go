package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list format: one edge per line, "src dst" or "src dst weight",
// '#' or '%' comment lines ignored. Binary format (".gr"): a fixed header
// followed by the out-CSR and weights; the in-CSR is rebuilt on load.
//
// The binary codec encodes and decodes slices through a fixed scratch
// buffer with explicit little-endian put/get calls. The previous
// implementation went through binary.Read/binary.Write, which allocate a
// staging buffer as large as the slice being transferred and copy every
// element twice; snapshot load time is a serving-path cost for graphd, so
// the loader also reconstructs the dual CSR directly instead of
// materializing an edge list and re-running the builder.

const (
	binaryMagic   = 0x47525052 // "GRPR"
	binaryVersion = 1

	// ioChunkBytes is the scratch-buffer size for binary slice transfer.
	ioChunkBytes = 1 << 16
)

// Format identifies the on-disk encoding of a graph file.
type Format int

const (
	// FormatText is the "src dst [weight]" edge-list encoding.
	FormatText Format = iota
	// FormatBinary is the compact CSR encoding written by WriteBinary.
	FormatBinary
)

// String returns the lowercase name of the format.
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ReadAuto loads a graph from r in either supported format, sniffing the
// binary magic from the first bytes of the stream. It reports which format
// it found so writers can mirror the input encoding.
func ReadAuto(r io.Reader) (*Graph, Format, error) {
	br := bufio.NewReaderSize(r, ioChunkBytes)
	head, err := br.Peek(8)
	if len(head) == 8 && binary.LittleEndian.Uint64(head) == binaryMagic {
		g, err := ReadBinary(br)
		return g, FormatBinary, err
	}
	if err != nil && err != io.EOF {
		return nil, FormatText, fmt.Errorf("graph: sniffing format: %w", err)
	}
	edges, err := ReadEdgeList(br)
	if err != nil {
		return nil, FormatText, err
	}
	g, err := Build(edges)
	return g, FormatText, err
}

// ReadEdgeList parses a text edge list from r.
func ReadEdgeList(r io.Reader) ([]Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 2 or 3 fields, got %d", line, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %v", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %v", line, err)
		}
		e := Edge{Src: VertexID(src), Dst: VertexID(dst)}
		if len(fields) == 3 {
			w, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", line, err)
			}
			e.Weight = uint32(w)
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return edges, nil
}

// WriteEdgeList writes g as a text edge list to w.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	weighted := g.Weighted()
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.OutNeighbors(VertexID(v))
		ws := g.OutWeights(VertexID(v))
		for i, dst := range nbrs {
			var err error
			if weighted {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", v, dst, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, dst)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, ioChunkBytes)
	var hdr [40]byte
	binary.LittleEndian.PutUint64(hdr[0:], binaryMagic)
	binary.LittleEndian.PutUint64(hdr[8:], binaryVersion)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(g.m))
	flags := uint64(0)
	if g.Weighted() {
		flags = 1
	}
	binary.LittleEndian.PutUint64(hdr[32:], flags)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeUint64s(bw, g.outIndex); err != nil {
		return err
	}
	if err := writeUint32s(bw, g.outEdges); err != nil {
		return err
	}
	if g.Weighted() {
		if err := writeUint32s(bw, g.outWeights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary loads a Graph written by WriteBinary. The out-CSR is taken
// from the file after validation; the in-CSR is rebuilt with a counting
// sort directly from it (scanning sources in ascending order, so
// in-neighbor lists come out source-sorted without an explicit sort).
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, ioChunkBytes)
	var hdr [40]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != binaryMagic {
		return nil, errors.New("graph: bad magic; not a graph binary")
	}
	if v := binary.LittleEndian.Uint64(hdr[8:]); v != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint64(hdr[16:]))
	m := int(binary.LittleEndian.Uint64(hdr[24:]))
	flags := binary.LittleEndian.Uint64(hdr[32:])
	if n < 0 || m < 0 || n > 1<<31 || m > 1<<38 {
		return nil, fmt.Errorf("graph: implausible dimensions n=%d m=%d", n, m)
	}

	// The dimensions are still untrusted at this point: a corrupt header
	// could claim n=2^31 on a 50-byte file, and preallocating n+1 uint64s
	// up front would commit 16 GiB before the first read fails. The grow
	// variants allocate as data actually arrives, so a truncated or lying
	// file costs at most ~2x the bytes it really contains.
	outIndex, err := readUint64sGrow(br, n+1)
	if err != nil {
		return nil, fmt.Errorf("graph: reading index: %w", err)
	}
	if err := validateIndex(outIndex, m, "out"); err != nil {
		return nil, err
	}
	outEdges, err := readUint32sGrow(br, m)
	if err != nil {
		return nil, fmt.Errorf("graph: reading edges: %w", err)
	}
	for _, d := range outEdges {
		if int(d) >= n {
			return nil, fmt.Errorf("graph: edge destination %d out of range", d)
		}
	}
	var outWeights []uint32
	if flags&1 != 0 {
		outWeights, err = readUint32sGrow(br, m)
		if err != nil {
			return nil, fmt.Errorf("graph: reading weights: %w", err)
		}
	}

	g := &Graph{
		n:          n,
		m:          m,
		outIndex:   outIndex,
		outEdges:   outEdges,
		outWeights: outWeights,
	}
	g.inIndex, g.inEdges, g.inWeights = buildInCSRFromOut(n, outIndex, outEdges, outWeights)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// buildInCSRFromOut derives the in-CSR from a validated out-CSR with a
// counting sort: count in-degrees, prefix-sum, then scatter sources in
// ascending order so each in-neighbor list is sorted by source.
func buildInCSRFromOut(n int, outIndex []uint64, outEdges []VertexID, outWeights []uint32) ([]uint64, []VertexID, []uint32) {
	inIndex := make([]uint64, n+1)
	for _, dst := range outEdges {
		inIndex[dst+1]++
	}
	for i := 1; i <= n; i++ {
		inIndex[i] += inIndex[i-1]
	}
	inEdges := make([]VertexID, len(outEdges))
	var inWeights []uint32
	if outWeights != nil {
		inWeights = make([]uint32, len(outWeights))
	}
	cursor := make([]uint64, n)
	copy(cursor, inIndex[:n])
	for v := 0; v < n; v++ {
		lo, hi := outIndex[v], outIndex[v+1]
		for i := lo; i < hi; i++ {
			dst := outEdges[i]
			pos := cursor[dst]
			cursor[dst]++
			inEdges[pos] = VertexID(v)
			if inWeights != nil {
				inWeights[pos] = outWeights[i]
			}
		}
	}
	return inIndex, inEdges, inWeights
}

// writeSlice streams vals through a fixed scratch buffer, size bytes per
// element encoded with put.
func writeSlice[T uint32 | uint64](w io.Writer, vals []T, size int, put func([]byte, T)) error {
	var buf [ioChunkBytes]byte
	perChunk := ioChunkBytes / size
	for len(vals) > 0 {
		chunk := min(len(vals), perChunk)
		for i, v := range vals[:chunk] {
			put(buf[i*size:], v)
		}
		if _, err := w.Write(buf[:chunk*size]); err != nil {
			return err
		}
		vals = vals[chunk:]
	}
	return nil
}

// readSlice fills dst by streaming through a fixed scratch buffer, size
// bytes per element decoded with get.
func readSlice[T uint32 | uint64](r io.Reader, dst []T, size int, get func([]byte) T) error {
	var buf [ioChunkBytes]byte
	perChunk := ioChunkBytes / size
	for len(dst) > 0 {
		chunk := min(len(dst), perChunk)
		if _, err := io.ReadFull(r, buf[:chunk*size]); err != nil {
			return err
		}
		for i := range dst[:chunk] {
			dst[i] = get(buf[i*size:])
		}
		dst = dst[chunk:]
	}
	return nil
}

func writeUint64s(w io.Writer, vals []uint64) error {
	return writeSlice(w, vals, 8, binary.LittleEndian.PutUint64)
}

func writeUint32s(w io.Writer, vals []uint32) error {
	return writeSlice(w, vals, 4, binary.LittleEndian.PutUint32)
}

func readUint64s(r io.Reader, dst []uint64) error {
	return readSlice(r, dst, 8, binary.LittleEndian.Uint64)
}

func readUint32s(r io.Reader, dst []uint32) error {
	return readSlice(r, dst, 4, binary.LittleEndian.Uint32)
}

// readSliceGrow reads count elements like readSlice but lets the
// destination grow with append instead of preallocating count elements,
// bounding the allocation by the bytes actually read: header dimensions
// are attacker-controlled until the payload backs them up.
func readSliceGrow[T uint32 | uint64](r io.Reader, count, size int, get func([]byte) T) ([]T, error) {
	var buf [ioChunkBytes]byte
	perChunk := ioChunkBytes / size
	dst := make([]T, 0, min(count, perChunk))
	for len(dst) < count {
		chunk := min(count-len(dst), perChunk)
		if _, err := io.ReadFull(r, buf[:chunk*size]); err != nil {
			return nil, err
		}
		for i := 0; i < chunk; i++ {
			dst = append(dst, get(buf[i*size:]))
		}
	}
	return dst, nil
}

func readUint64sGrow(r io.Reader, count int) ([]uint64, error) {
	return readSliceGrow(r, count, 8, binary.LittleEndian.Uint64)
}

func readUint32sGrow(r io.Reader, count int) ([]uint32, error) {
	return readSliceGrow(r, count, 4, binary.LittleEndian.Uint32)
}
