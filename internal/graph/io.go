package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list format: one edge per line, "src dst" or "src dst weight",
// '#' or '%' comment lines ignored. Binary format (".gr"): a fixed header
// followed by the out-CSR and weights; the in-CSR is rebuilt on load.

const (
	binaryMagic   = 0x47525052 // "GRPR"
	binaryVersion = 1
)

// ReadEdgeList parses a text edge list from r.
func ReadEdgeList(r io.Reader) ([]Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 2 or 3 fields, got %d", line, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %v", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %v", line, err)
		}
		e := Edge{Src: VertexID(src), Dst: VertexID(dst)}
		if len(fields) == 3 {
			w, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", line, err)
			}
			e.Weight = uint32(w)
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return edges, nil
}

// WriteEdgeList writes g as a text edge list to w.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	weighted := g.Weighted()
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.OutNeighbors(VertexID(v))
		ws := g.OutWeights(VertexID(v))
		for i, dst := range nbrs {
			var err error
			if weighted {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", v, dst, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, dst)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binaryMagic, binaryVersion, uint64(g.n), uint64(g.m)}
	flags := uint64(0)
	if g.Weighted() {
		flags = 1
	}
	hdr = append(hdr, flags)
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outIndex); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outEdges); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.outWeights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary loads a Graph written by WriteBinary, rebuilding the in-CSR
// and validating the result.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, errors.New("graph: bad magic; not a graph binary")
	}
	if hdr[1] != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", hdr[1])
	}
	n, m, flags := int(hdr[2]), int(hdr[3]), hdr[4]
	if n < 0 || m < 0 || n > 1<<31 || m > 1<<38 {
		return nil, fmt.Errorf("graph: implausible dimensions n=%d m=%d", n, m)
	}
	outIndex := make([]uint64, n+1)
	if err := binary.Read(br, binary.LittleEndian, outIndex); err != nil {
		return nil, fmt.Errorf("graph: reading index: %w", err)
	}
	outEdges := make([]VertexID, m)
	if err := binary.Read(br, binary.LittleEndian, outEdges); err != nil {
		return nil, fmt.Errorf("graph: reading edges: %w", err)
	}
	var outWeights []uint32
	if flags&1 != 0 {
		outWeights = make([]uint32, m)
		if err := binary.Read(br, binary.LittleEndian, outWeights); err != nil {
			return nil, fmt.Errorf("graph: reading weights: %w", err)
		}
	}

	// Reconstruct the edge list and rebuild both CSRs so the in-CSR and all
	// invariants come from one code path.
	edges := make([]Edge, m)
	v := 0
	for i := 0; i < m; i++ {
		for uint64(i) >= outIndex[v+1] {
			v++
			if v >= n {
				return nil, errors.New("graph: corrupt index array")
			}
		}
		if int(outEdges[i]) >= n {
			return nil, fmt.Errorf("graph: edge destination %d out of range", outEdges[i])
		}
		edges[i] = Edge{Src: VertexID(v), Dst: outEdges[i]}
		if outWeights != nil {
			edges[i].Weight = outWeights[i]
		}
	}
	g, err := BuildWith(edges, BuildOptions{
		NumVertices:   n,
		Weighted:      outWeights != nil,
		SortNeighbors: true,
	})
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
