package graph

// View is the read-only graph interface the execution engine and the five
// benchmark applications consume. *Graph implements it with direct CSR
// sub-slices; compressed representations (internal/csrz) implement it by
// decoding on demand. Implementations must be safe for concurrent use.
//
// The accessor contract matches *Graph: OutNeighbors/InNeighbors and the
// weight accessors return read-only slices aligned index-for-index, and
// the order of a vertex's neighbor list is part of the representation —
// two Views of the same graph must enumerate each list in the same order
// for float-accumulating applications (PR, BC) to produce bit-identical
// results.
//
// Hot loops should not assume the returned slices are free: a compressed
// View materializes them per call. The engine type-switches to streaming
// decode paths (see internal/ligra) and other per-edge consumers should
// go through an AdjBuffer, which borrows the sub-slice on plain graphs
// and reuses one decode buffer on streamed ones.
type View interface {
	NumVertices() int
	NumEdges() int
	AvgDegree() float64
	Weighted() bool
	OutDegree(v VertexID) int
	InDegree(v VertexID) int
	OutNeighbors(v VertexID) []VertexID
	InNeighbors(v VertexID) []VertexID
	OutWeights(v VertexID) []uint32
	InWeights(v VertexID) []uint32
	Degrees(kind DegreeKind) []uint32
}

// NeighborStreamer is implemented by Views whose neighbor lists are
// decoded rather than stored (compressed CSR): Append* decode v's list
// into buf (resliced from buf[:0]) and return it, so a caller holding one
// buffer per goroutine gets amortized-zero-allocation access. The plain
// *Graph deliberately does not implement it — callers use AdjBuffer,
// which prefers the direct sub-slice.
type NeighborStreamer interface {
	AppendOutNeighbors(v VertexID, buf []VertexID) []VertexID
	AppendInNeighbors(v VertexID, buf []VertexID) []VertexID
}

// AdjBuffer provides amortized-zero-allocation neighbor access over any
// View: a direct sub-slice on plain graphs, a reused decode buffer on
// NeighborStreamer implementations. Not safe for concurrent use — keep
// one per goroutine. The returned slices are invalidated by the next call.
type AdjBuffer struct {
	st  NeighborStreamer
	buf []VertexID
}

// NewAdjBuffer returns an AdjBuffer for g.
func NewAdjBuffer(g View) AdjBuffer {
	st, _ := g.(NeighborStreamer)
	return AdjBuffer{st: st}
}

// Out returns v's out-neighbors of g (read-only, valid until the next
// call on this buffer).
func (a *AdjBuffer) Out(g View, v VertexID) []VertexID {
	if a.st == nil {
		return g.OutNeighbors(v)
	}
	a.buf = a.st.AppendOutNeighbors(v, a.buf[:0])
	return a.buf
}

// In returns v's in-neighbors of g (read-only, valid until the next call
// on this buffer).
func (a *AdjBuffer) In(g View, v VertexID) []VertexID {
	if a.st == nil {
		return g.InNeighbors(v)
	}
	a.buf = a.st.AppendInNeighbors(v, a.buf[:0])
	return a.buf
}

// IsNilView reports whether v is nil or a typed-nil *Graph — the two
// "no graph" shapes an interface parameter can smuggle past a plain nil
// check.
func IsNilView(v View) bool {
	if v == nil {
		return true
	}
	g, ok := v.(*Graph)
	return ok && g == nil
}

// NewFromCSR assembles a Graph directly from dual-CSR arrays (the layout
// Validate checks): index arrays of length n+1, edge arrays of length m,
// weight arrays either both nil or both length m. The slices are retained,
// not copied. Used by decoders that already hold both CSRs (internal/csrz)
// and by tests.
func NewFromCSR(n, m int, outIndex []uint64, outEdges []VertexID, outWeights []uint32,
	inIndex []uint64, inEdges []VertexID, inWeights []uint32) (*Graph, error) {
	g := &Graph{
		n: n, m: m,
		outIndex: outIndex, outEdges: outEdges, outWeights: outWeights,
		inIndex: inIndex, inEdges: inEdges, inWeights: inWeights,
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
