package graph

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzReadBinary feeds arbitrary bytes to the binary graph codec.
// ReadBinary must never panic or trust header dimensions ahead of the
// payload (a lying header on a tiny file must fail, not allocate), and
// anything it accepts must survive a write/read round trip bit-identically.
func FuzzReadBinary(f *testing.F) {
	g, err := Build([]Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 0, Dst: 2}})
	if err != nil {
		f.Fatal(err)
	}
	var plain bytes.Buffer
	if err := WriteBinary(&plain, g); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())

	wg, err := Build([]Edge{{Src: 0, Dst: 1, Weight: 5}, {Src: 1, Dst: 0, Weight: 2}})
	if err != nil {
		f.Fatal(err)
	}
	var weighted bytes.Buffer
	if err := WriteBinary(&weighted, wg); err != nil {
		f.Fatal(err)
	}
	f.Add(weighted.Bytes())

	// A header claiming 2^31 vertices on an otherwise empty file: the
	// reader must reject it cheaply instead of preallocating 16 GiB.
	var lying [40]byte
	binary.LittleEndian.PutUint64(lying[0:], binaryMagic)
	binary.LittleEndian.PutUint64(lying[8:], binaryVersion)
	binary.LittleEndian.PutUint64(lying[16:], 1<<31)
	binary.LittleEndian.PutUint64(lying[24:], 1<<38)
	f.Add(lying[:])
	f.Add(plain.Bytes()[:20]) // truncated header

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, g); err != nil {
			t.Fatalf("rewriting an accepted graph failed: %v", err)
		}
		g2, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("rereading a rewritten graph failed: %v", err)
		}
		if g.n != g2.n || g.m != g2.m ||
			!reflect.DeepEqual(g.outIndex, g2.outIndex) ||
			!reflect.DeepEqual(g.outEdges, g2.outEdges) ||
			!reflect.DeepEqual(g.outWeights, g2.outWeights) ||
			!reflect.DeepEqual(g.inIndex, g2.inIndex) ||
			!reflect.DeepEqual(g.inEdges, g2.inEdges) {
			t.Fatal("write/read round trip diverged")
		}
	})
}
