//go:build !unix

package csrz

import "os"

// mapping is a stub on platforms without mmap support: OpenFile falls
// back to reading the whole file into the heap, so there is nothing to
// release.
type mapping struct {
	size int64
}

func (m *mapping) close() error { return nil }

func (m *mapping) isClosed() bool { return false }

// mapFile reads the whole file into memory. The nil mapping signals the
// heap-backed fallback to OpenFile.
func mapFile(path string) ([]byte, *mapping, error) {
	data, err := os.ReadFile(path)
	return data, nil, err
}
