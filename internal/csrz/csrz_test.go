package csrz

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"graphreorder/internal/gen"
	"graphreorder/internal/graph"
)

func testGraph(t testing.TB, name string, weighted bool) *graph.Graph {
	t.Helper()
	cfg := gen.MustDataset(name, gen.Tiny)
	cfg.Weighted = weighted
	g, err := gen.Generate(cfg)
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	return g
}

// shuffledGraph builds a graph whose neighbor lists are deliberately NOT
// sorted, to pin the order-preservation contract (Relabel does not
// re-sort, so the codec must not assume ascending lists).
func shuffledGraph(t testing.TB) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	const n = 500
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		deg := rng.Intn(8)
		for i := 0; i < deg; i++ {
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(rng.Intn(n))})
		}
	}
	g, err := graph.BuildWith(edges, graph.BuildOptions{NumVertices: n, SortNeighbors: false})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func assertSameView(t *testing.T, want *graph.Graph, got graph.View) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() || got.Weighted() != want.Weighted() {
		t.Fatalf("shape mismatch: got (%d,%d,%v) want (%d,%d,%v)",
			got.NumVertices(), got.NumEdges(), got.Weighted(),
			want.NumVertices(), want.NumEdges(), want.Weighted())
	}
	for v := 0; v < want.NumVertices(); v++ {
		id := graph.VertexID(v)
		if got.OutDegree(id) != want.OutDegree(id) || got.InDegree(id) != want.InDegree(id) {
			t.Fatalf("vertex %d: degree mismatch", v)
		}
		if o, w := got.OutNeighbors(id), want.OutNeighbors(id); !equalIDs(o, w) {
			t.Fatalf("vertex %d: out neighbors %v want %v", v, o, w)
		}
		if o, w := got.InNeighbors(id), want.InNeighbors(id); !equalIDs(o, w) {
			t.Fatalf("vertex %d: in neighbors mismatch", v)
		}
		if want.Weighted() {
			if !reflect.DeepEqual(append([]uint32{}, got.OutWeights(id)...), append([]uint32{}, want.OutWeights(id)...)) {
				t.Fatalf("vertex %d: out weights mismatch", v)
			}
		}
	}
}

func equalIDs(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEncodeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		weighted bool
	}{{"lj", false}, {"uni", false}, {"road", true}} {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph(t, tc.name, tc.weighted)
			z := Encode(g)
			assertSameView(t, g, z)

			dec, err := z.Decode()
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			assertSameView(t, g, dec)
		})
	}
}

func TestEncodePreservesUnsortedOrder(t *testing.T) {
	g := shuffledGraph(t)
	z := Encode(g)
	assertSameView(t, g, z)
}

func TestIteratorMatchesNeighbors(t *testing.T) {
	g := testGraph(t, "lj", false)
	z := Encode(g)
	for v := 0; v < g.NumVertices(); v++ {
		id := graph.VertexID(v)
		it := z.OutIter(id)
		want := g.OutNeighbors(id)
		if it.Remaining() != len(want) {
			t.Fatalf("vertex %d: Remaining %d want %d", v, it.Remaining(), len(want))
		}
		for i, w := range want {
			u, ok := it.Next()
			if !ok || u != w {
				t.Fatalf("vertex %d: iter[%d] = %d,%v want %d", v, i, u, ok, w)
			}
		}
		if _, ok := it.Next(); ok {
			t.Fatalf("vertex %d: iterator did not terminate", v)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		weighted bool
	}{{"lj", false}, {"road", true}} {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph(t, tc.name, tc.weighted)
			z := Encode(g)
			path := filepath.Join(t.TempDir(), "g.csrz")
			if err := z.WriteFile(path); err != nil {
				t.Fatalf("write: %v", err)
			}

			heap, err := ReadFile(path)
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			assertSameView(t, g, heap)
			if heap.MmapBacked() {
				t.Fatal("ReadFile graph claims to be mmap-backed")
			}

			mapped, err := OpenFile(path)
			if err != nil {
				t.Fatalf("OpenFile: %v", err)
			}
			assertSameView(t, g, mapped)
			st := mapped.Stats()
			if st.MmapBacked != (mapped.mapping != nil) {
				t.Fatalf("stats mmap flag mismatch")
			}
			if err := mapped.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if err := mapped.Close(); err != nil {
				t.Fatalf("second close: %v", err)
			}
		})
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	z := Encode(testGraph(t, "lj", false))
	var a, b bytes.Buffer
	if _, err := z.Write(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := z.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same graph differ")
	}
}

func TestCorruptionDetected(t *testing.T) {
	z := Encode(testGraph(t, "lj", false))
	path := filepath.Join(t.TempDir(), "g.csrz")
	if err := z.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one adjacency bit somewhere past the header.
	raw[len(raw)/2] ^= 0x10
	bad := filepath.Join(t.TempDir(), "bad.csrz")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bad); err == nil {
		t.Fatal("OpenFile accepted a corrupted file")
	}
	if _, err := ReadCSRZ(bytes.NewReader(raw)); err == nil {
		t.Fatal("ReadCSRZ accepted a corrupted stream")
	}
	// Truncation must also fail, in both readers.
	if _, err := ReadCSRZ(bytes.NewReader(raw[:len(raw)/3])); err == nil {
		t.Fatal("ReadCSRZ accepted a truncated stream")
	}
	trunc := filepath.Join(t.TempDir(), "trunc.csrz")
	if err := os.WriteFile(trunc, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(trunc); err == nil {
		t.Fatal("OpenFile accepted a truncated file")
	}
}

func TestStats(t *testing.T) {
	g := testGraph(t, "lj", false)
	z := Encode(g)
	st := z.Stats()
	if st.Vertices != g.NumVertices() || st.Edges != g.NumEdges() {
		t.Fatalf("stats shape mismatch: %+v", st)
	}
	if st.PlainAdjBytes != int64(g.NumEdges())*8 {
		t.Fatalf("plain adjacency bytes %d want %d", st.PlainAdjBytes, g.NumEdges()*8)
	}
	if st.CompressedAdjBytes <= 0 || st.CompressedAdjBytes >= st.PlainAdjBytes {
		t.Fatalf("compression did not shrink adjacency: %d vs %d", st.CompressedAdjBytes, st.PlainAdjBytes)
	}
	if st.Ratio <= 1 {
		t.Fatalf("ratio %.3f, want > 1", st.Ratio)
	}
	if st.ResidentBytes <= st.CompressedAdjBytes {
		t.Fatalf("resident bytes %d should include indexes", st.ResidentBytes)
	}
}

func TestVarint(t *testing.T) {
	cases := []int64{0, 1, -1, 2, -2, 63, 64, -64, -65, 1 << 20, -(1 << 20), 1<<32 - 1, -(1<<32 - 1)}
	for _, d := range cases {
		b := appendUvarint(nil, zigzag(d))
		if len(b) != uvarintLen(zigzag(d)) {
			t.Fatalf("delta %d: encoded %d bytes, uvarintLen says %d", d, len(b), uvarintLen(zigzag(d)))
		}
		u, n := readUvarint(b)
		if n != len(b) || unzigzag(u) != d {
			t.Fatalf("delta %d: round-trip got %d (consumed %d/%d)", d, unzigzag(u), n, len(b))
		}
	}
	if _, n := readUvarint([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80}); n != 0 {
		t.Fatal("overlong varint accepted")
	}
	if _, n := readUvarint([]byte{0x80}); n != 0 {
		t.Fatal("truncated varint accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := graph.BuildWith(nil, graph.BuildOptions{NumVertices: 3})
	if err != nil {
		t.Fatal(err)
	}
	z := Encode(g)
	assertSameView(t, g, z)
	var buf bytes.Buffer
	if _, err := z.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSRZ(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameView(t, g, back)
}
