//go:build unix

package csrz

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
)

// mapping owns one read-only file mapping. close is idempotent; the
// first call unmaps and every later call returns the same result.
type mapping struct {
	data   []byte
	size   int64
	once   sync.Once
	err    error
	closed atomic.Bool
}

func (m *mapping) close() error {
	m.once.Do(func() {
		m.closed.Store(true)
		m.err = syscall.Munmap(m.data)
		m.data = nil
	})
	return m.err
}

func (m *mapping) isClosed() bool { return m.closed.Load() }

// mapFile maps path read-only. The file descriptor is closed before
// returning — the mapping keeps the pages alive on its own.
func mapFile(path string) ([]byte, *mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, fmt.Errorf("csrz: %s is empty", path)
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("csrz: %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("csrz: mmap %s: %w", path, err)
	}
	return data, &mapping{data: data, size: size}, nil
}
