package csrz

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"graphreorder/internal/graph"
)

// TestRegenerateCorpus rewrites the committed seed corpus under
// testdata/fuzz/FuzzReadCSRZ when CSRZ_WRITE_CORPUS=1 is set — run it
// after a format change so CI fuzzes the current container layout.
func TestRegenerateCorpus(t *testing.T) {
	if os.Getenv("CSRZ_WRITE_CORPUS") == "" {
		t.Skip("set CSRZ_WRITE_CORPUS=1 to rewrite the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReadCSRZ")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seedInputs(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// seedInputs builds the canonical fuzz seeds, shared by f.Add and the
// committed corpus so the two cannot drift.
func seedInputs(t testing.TB) map[string][]byte {
	t.Helper()
	g, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 0, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if _, err := Encode(g).Write(&plain); err != nil {
		t.Fatal(err)
	}

	wg, err := graph.BuildWith([]graph.Edge{{Src: 0, Dst: 1, Weight: 5}, {Src: 1, Dst: 0, Weight: 2}},
		graph.BuildOptions{Weighted: true, SortNeighbors: true})
	if err != nil {
		t.Fatal(err)
	}
	var weighted bytes.Buffer
	if _, err := Encode(wg).Write(&weighted); err != nil {
		t.Fatal(err)
	}

	// A header claiming 2^31-1 vertices and a section table promising
	// gigabytes: the reader must run out of payload cheaply instead of
	// preallocating the announced sizes.
	var lying [headerBytes + 24]byte
	copy(lying[:], formatMagic)
	binary.LittleEndian.PutUint32(lying[8:], formatVersion)
	binary.LittleEndian.PutUint64(lying[16:], 1<<31-1)
	binary.LittleEndian.PutUint64(lying[24:], 1<<38-1)
	binary.LittleEndian.PutUint64(lying[32:], 1)
	binary.LittleEndian.PutUint64(lying[headerBytes:], secOutIdx)
	binary.LittleEndian.PutUint64(lying[headerBytes+8:], sectionAlign)
	binary.LittleEndian.PutUint64(lying[headerBytes+16:], (1<<31)*8)

	// Valid file with one flipped adjacency bit: must be caught by the CRC.
	corrupt := append([]byte(nil), plain.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0x40

	return map[string][]byte{
		"unweighted":   plain.Bytes(),
		"weighted":     weighted.Bytes(),
		"lying-header": lying[:],
		"truncated":    plain.Bytes()[:headerBytes-4],
		"bitflip":      corrupt,
	}
}

// FuzzReadCSRZ feeds arbitrary bytes to the .csrz container reader.
// ReadCSRZ must never panic and never let a lying header or section
// table drive allocation (buffers grow only as payload arrives), and
// anything it accepts must survive a write/read round trip
// bit-identically and pass full adjacency validation — the serving path
// relies on load-time validation so AdjIter can skip per-step checks.
func FuzzReadCSRZ(f *testing.F) {
	for _, data := range seedInputs(f) {
		f.Add(data)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		z, err := ReadCSRZ(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := z.Write(&out); err != nil {
			t.Fatalf("rewriting an accepted graph failed: %v", err)
		}
		z2, err := ReadCSRZ(&out)
		if err != nil {
			t.Fatalf("rereading a rewritten graph failed: %v", err)
		}
		if z.n != z2.n || z.m != z2.m ||
			!reflect.DeepEqual(z.outIdx, z2.outIdx) ||
			!reflect.DeepEqual(z.outOff, z2.outOff) ||
			!bytes.Equal(z.outData, z2.outData) ||
			!reflect.DeepEqual(z.outW, z2.outW) ||
			!reflect.DeepEqual(z.inIdx, z2.inIdx) ||
			!reflect.DeepEqual(z.inOff, z2.inOff) ||
			!bytes.Equal(z.inData, z2.inData) ||
			!reflect.DeepEqual(z.inW, z2.inW) {
			t.Fatal("write/read round trip diverged")
		}
		// The mmap parser must agree with the streaming reader on
		// accept/reject — a file the store can load must be a file the
		// fuzz-hardened reader would have accepted, and vice versa.
		path := filepath.Join(t.TempDir(), "f.csrz")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mg, err := OpenFile(path)
		if err != nil {
			t.Fatalf("OpenFile rejected a stream ReadCSRZ accepted: %v", err)
		}
		mg.Close()
	})
}
