package csrz

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"unsafe"
)

// .csrz container layout:
//
//	header (64 bytes)
//	  [0:8)   magic "CSRZSNP1"
//	  [8:12)  version (uint32, currently 1)
//	  [12:16) flags (uint32): bit0 = weighted
//	  [16:24) n (uint64)
//	  [24:32) m (uint64)
//	  [32:40) section count (uint64)
//	  [40:64) reserved, zero
//	section table (count × 24 bytes): {id, offset, length} uint64 each
//	sections, each zero-padded to a 4096-byte boundary, in table order
//	trailer (8 bytes at EOF): CRC-32C of file[0:size-8], then "ZRSC"
//
// All integers are little-endian. Page alignment lets OpenFile hand out
// the index sections as []uint64/[]uint32 views straight into the
// mapping; the whole-file CRC makes torn writes and bit rot detectable
// before any of those views escape.

// Magic is the 8-byte signature that opens every .csrz file; callers
// (graphd's load path, graphinfo) sniff it to route a file to this codec.
const Magic = formatMagic

const (
	formatMagic   = "CSRZSNP1"
	trailerMagic  = 0x4352535A // "ZRSC" little-endian
	formatVersion = 1
	headerBytes   = 64
	sectionAlign  = 4096
	trailerBytes  = 8

	flagWeighted = 1 << 0

	secOutIdx  = 1
	secOutOff  = 2
	secOutData = 3
	secOutW    = 4
	secInIdx   = 5
	secInOff   = 6
	secInData  = 7
	secInW     = 8

	maxSections = 8

	// Same plausibility bounds as graph.ReadBinary: reject headers that
	// could not describe a real snapshot before doing any work.
	maxVertices = 1 << 31
	maxEdges    = 1 << 38
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

type section struct {
	id, off, length uint64
}

// layoutSections assigns page-aligned offsets for g's sections and
// returns the table plus the total file size (including trailer).
func layoutSections(g *Graph) ([]section, int64) {
	type blob struct {
		id  uint64
		len uint64
	}
	blobs := []blob{
		{secOutIdx, uint64(len(g.outIdx)) * 8},
		{secOutOff, uint64(len(g.outOff)) * 8},
		{secOutData, uint64(len(g.outData))},
		{secInIdx, uint64(len(g.inIdx)) * 8},
		{secInOff, uint64(len(g.inOff)) * 8},
		{secInData, uint64(len(g.inData))},
	}
	if g.Weighted() {
		blobs = append(blobs,
			blob{secOutW, uint64(len(g.outW)) * 4},
			blob{secInW, uint64(len(g.inW)) * 4})
	}
	pos := uint64(headerBytes + 24*len(blobs))
	secs := make([]section, 0, len(blobs))
	for _, b := range blobs {
		pos = alignUp(pos)
		secs = append(secs, section{id: b.id, off: pos, length: b.len})
		pos += b.len
	}
	return secs, int64(pos) + trailerBytes
}

func alignUp(x uint64) uint64 {
	return (x + sectionAlign - 1) &^ (sectionAlign - 1)
}

// FileSize returns the exact size in bytes of the .csrz container Write
// would produce for g — header, section table, page-aligned sections,
// trailer — without writing anything. Deterministic: Write always
// produces exactly this many bytes.
func (g *Graph) FileSize() int64 {
	_, size := layoutSections(g)
	return size
}

// SniffFile reports whether path begins with the .csrz magic, without
// validating anything beyond the first 8 bytes. A file too short to hold
// the magic is simply "not csrz"; only open errors are returned.
func SniffFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false, nil
	}
	return string(magic[:]) == Magic, nil
}

type crcWriter struct {
	w   io.Writer
	crc uint32
	n   uint64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.n += uint64(n)
	return n, err
}

// Write streams g in .csrz container format to w, returning the number
// of bytes written.
func (g *Graph) Write(w io.Writer) (int64, error) {
	secs, total := layoutSections(g)

	cw := &crcWriter{w: w}
	hdr := make([]byte, headerBytes)
	copy(hdr, formatMagic)
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	var flags uint32
	if g.Weighted() {
		flags |= flagWeighted
	}
	binary.LittleEndian.PutUint32(hdr[12:], flags)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(g.m))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(secs)))
	if _, err := cw.Write(hdr); err != nil {
		return int64(cw.n), err
	}
	tab := make([]byte, 24*len(secs))
	for i, s := range secs {
		binary.LittleEndian.PutUint64(tab[i*24:], s.id)
		binary.LittleEndian.PutUint64(tab[i*24+8:], s.off)
		binary.LittleEndian.PutUint64(tab[i*24+16:], s.length)
	}
	if _, err := cw.Write(tab); err != nil {
		return int64(cw.n), err
	}
	var pad [sectionAlign]byte
	for _, s := range secs {
		if gap := s.off - cw.n; gap > 0 {
			if _, err := cw.Write(pad[:gap]); err != nil {
				return int64(cw.n), err
			}
		}
		var err error
		switch s.id {
		case secOutIdx:
			err = writeUint64s(cw, g.outIdx)
		case secOutOff:
			err = writeUint64s(cw, g.outOff)
		case secOutData:
			_, err = cw.Write(g.outData)
		case secOutW:
			err = writeUint32s(cw, g.outW)
		case secInIdx:
			err = writeUint64s(cw, g.inIdx)
		case secInOff:
			err = writeUint64s(cw, g.inOff)
		case secInData:
			_, err = cw.Write(g.inData)
		case secInW:
			err = writeUint32s(cw, g.inW)
		}
		if err != nil {
			return int64(cw.n), err
		}
	}
	var trailer [trailerBytes]byte
	binary.LittleEndian.PutUint32(trailer[0:], cw.crc)
	binary.LittleEndian.PutUint32(trailer[4:], trailerMagic)
	if _, err := cw.Write(trailer[:]); err != nil {
		return int64(cw.n), err
	}
	if int64(cw.n) != total {
		return int64(cw.n), fmt.Errorf("csrz: wrote %d bytes, layout computed %d", cw.n, total)
	}
	return int64(cw.n), nil
}

// WriteFile writes g to path in .csrz format.
func (g *Graph) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := g.Write(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

const ioChunkBytes = 1 << 16

func writeUint64s(w io.Writer, xs []uint64) error {
	var buf [ioChunkBytes]byte
	for len(xs) > 0 {
		k := min(len(xs), ioChunkBytes/8)
		for i, x := range xs[:k] {
			binary.LittleEndian.PutUint64(buf[i*8:], x)
		}
		if _, err := w.Write(buf[:k*8]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

func writeUint32s(w io.Writer, xs []uint32) error {
	var buf [ioChunkBytes]byte
	for len(xs) > 0 {
		k := min(len(xs), ioChunkBytes/4)
		for i, x := range xs[:k] {
			binary.LittleEndian.PutUint32(buf[i*4:], x)
		}
		if _, err := w.Write(buf[:k*4]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

type crcReader struct {
	r   io.Reader
	crc uint32
	n   uint64
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.n += uint64(n)
	return n, err
}

// ReadCSRZ decodes a .csrz stream into a heap-backed compressed graph.
// It is the hardened path fuzzed by FuzzReadCSRZ: every buffer grows as
// payload actually arrives, so a header or section table announcing
// absurd sizes costs nothing before the stream runs dry; the whole-file
// CRC and a full adjacency decode are verified before the graph is
// returned.
func ReadCSRZ(r io.Reader) (*Graph, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<16)}

	var hdr [headerBytes]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return nil, fmt.Errorf("csrz: reading header: %w", err)
	}
	if string(hdr[:8]) != formatMagic {
		return nil, fmt.Errorf("csrz: bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != formatVersion {
		return nil, fmt.Errorf("csrz: unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint32(hdr[12:])
	if flags&^uint32(flagWeighted) != 0 {
		return nil, fmt.Errorf("csrz: unknown flags %#x", flags)
	}
	n := binary.LittleEndian.Uint64(hdr[16:])
	m := binary.LittleEndian.Uint64(hdr[24:])
	nsec := binary.LittleEndian.Uint64(hdr[32:])
	if n > maxVertices || m > maxEdges {
		return nil, fmt.Errorf("csrz: implausible dimensions n=%d m=%d", n, m)
	}
	if nsec == 0 || nsec > maxSections {
		return nil, fmt.Errorf("csrz: implausible section count %d", nsec)
	}
	weighted := flags&flagWeighted != 0

	tab := make([]byte, 24*nsec)
	if _, err := io.ReadFull(cr, tab); err != nil {
		return nil, fmt.Errorf("csrz: reading section table: %w", err)
	}
	secs := make([]section, nsec)
	prevEnd := cr.n
	for i := range secs {
		secs[i] = section{
			id:     binary.LittleEndian.Uint64(tab[i*24:]),
			off:    binary.LittleEndian.Uint64(tab[i*24+8:]),
			length: binary.LittleEndian.Uint64(tab[i*24+16:]),
		}
		s := secs[i]
		if s.off%sectionAlign != 0 || s.off < prevEnd || s.off+s.length < s.off {
			return nil, fmt.Errorf("csrz: section %d has bad extent [%d,+%d)", s.id, s.off, s.length)
		}
		prevEnd = s.off + s.length
	}

	g := &Graph{n: int(n), m: int(m)}
	seen := make(map[uint64]bool, nsec)
	for _, s := range secs {
		if seen[s.id] {
			return nil, fmt.Errorf("csrz: duplicate section %d", s.id)
		}
		seen[s.id] = true
		if err := discardPadding(cr, s.off); err != nil {
			return nil, err
		}
		var err error
		switch s.id {
		case secOutIdx:
			g.outIdx, err = readUint64sGrow(cr, s.length)
		case secOutOff:
			g.outOff, err = readUint64sGrow(cr, s.length)
		case secOutData:
			g.outData, err = readBytesGrow(cr, s.length)
		case secOutW:
			g.outW, err = readUint32sGrow(cr, s.length)
		case secInIdx:
			g.inIdx, err = readUint64sGrow(cr, s.length)
		case secInOff:
			g.inOff, err = readUint64sGrow(cr, s.length)
		case secInData:
			g.inData, err = readBytesGrow(cr, s.length)
		case secInW:
			g.inW, err = readUint32sGrow(cr, s.length)
		default:
			return nil, fmt.Errorf("csrz: unknown section id %d", s.id)
		}
		if err != nil {
			return nil, fmt.Errorf("csrz: reading section %d: %w", s.id, err)
		}
	}
	bodyCRC := cr.crc
	var trailer [trailerBytes]byte
	if _, err := io.ReadFull(cr, trailer[:]); err != nil {
		return nil, fmt.Errorf("csrz: reading trailer: %w", err)
	}
	if binary.LittleEndian.Uint32(trailer[4:]) != trailerMagic {
		return nil, fmt.Errorf("csrz: bad trailer magic")
	}
	if got := binary.LittleEndian.Uint32(trailer[0:]); got != bodyCRC {
		return nil, fmt.Errorf("csrz: checksum mismatch: file says %#x, computed %#x", got, bodyCRC)
	}
	if err := checkSections(g, weighted); err != nil {
		return nil, err
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// checkSections verifies the loaded sections agree with the header
// dimensions (lengths were attacker-controlled until now).
func checkSections(g *Graph, weighted bool) error {
	if len(g.outIdx) != g.n+1 || len(g.inIdx) != g.n+1 ||
		len(g.outOff) != g.n+1 || len(g.inOff) != g.n+1 {
		return fmt.Errorf("csrz: index sections disagree with n=%d", g.n)
	}
	if weighted {
		if len(g.outW) != g.m || len(g.inW) != g.m {
			return fmt.Errorf("csrz: weight sections disagree with m=%d", g.m)
		}
	} else if g.outW != nil || g.inW != nil {
		return fmt.Errorf("csrz: weight sections present on unweighted snapshot")
	}
	return nil
}

func discardPadding(cr *crcReader, target uint64) error {
	if target < cr.n {
		return fmt.Errorf("csrz: section overlaps previous data")
	}
	_, err := io.CopyN(io.Discard, cr, int64(target-cr.n))
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// readBytesGrow reads length bytes without trusting length for the
// initial allocation: the buffer grows chunk by chunk as data arrives.
func readBytesGrow(r io.Reader, length uint64) ([]byte, error) {
	var out []byte
	var chunk [ioChunkBytes]byte
	for length > 0 {
		k := uint64(len(chunk))
		if length < k {
			k = length
		}
		if _, err := io.ReadFull(r, chunk[:k]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		out = append(out, chunk[:k]...)
		length -= k
	}
	return out, nil
}

func readUint64sGrow(r io.Reader, length uint64) ([]uint64, error) {
	if length%8 != 0 {
		return nil, fmt.Errorf("uint64 section length %d not a multiple of 8", length)
	}
	var out []uint64
	var chunk [ioChunkBytes]byte
	for length > 0 {
		k := uint64(len(chunk))
		if length < k {
			k = length
		}
		if _, err := io.ReadFull(r, chunk[:k]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		for i := uint64(0); i < k; i += 8 {
			out = append(out, binary.LittleEndian.Uint64(chunk[i:]))
		}
		length -= k
	}
	return out, nil
}

func readUint32sGrow(r io.Reader, length uint64) ([]uint32, error) {
	if length%4 != 0 {
		return nil, fmt.Errorf("uint32 section length %d not a multiple of 4", length)
	}
	var out []uint32
	var chunk [ioChunkBytes]byte
	for length > 0 {
		k := uint64(len(chunk))
		if length < k {
			k = length
		}
		if _, err := io.ReadFull(r, chunk[:k]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		for i := uint64(0); i < k; i += 4 {
			out = append(out, binary.LittleEndian.Uint32(chunk[i:]))
		}
		length -= k
	}
	return out, nil
}

// ReadFile loads a .csrz file through the hardened streaming reader
// (heap-backed, no mapping). Prefer OpenFile for serving.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSRZ(f)
}

// OpenFile maps path read-only and returns a compressed graph whose
// sections are zero-copy views into the mapping (on little-endian unix
// hosts; elsewhere sections are copied out and the mapping is released
// immediately). The whole-file CRC and a full adjacency decode are
// verified before returning, so a graph that loads is a graph whose
// iterators cannot fault. The caller owns the mapping: Close the graph
// after the last reader has drained (see doc.go).
func OpenFile(path string) (*Graph, error) {
	if !hostLittleEndian {
		// The on-disk layout is little-endian; a big-endian host has to
		// byte-swap every section anyway, so zero-copy buys nothing.
		return ReadFile(path)
	}
	data, mp, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	g, err := parseMapped(data)
	if err != nil {
		if mp != nil {
			mp.close()
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	g.mapping = mp
	if err := g.validate(); err != nil {
		g.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// parseMapped builds a Graph over a fully-loaded .csrz image, sharing
// the image's memory for every section when the host is little-endian.
func parseMapped(data []byte) (*Graph, error) {
	if len(data) < headerBytes+trailerBytes {
		return nil, fmt.Errorf("csrz: file too small (%d bytes)", len(data))
	}
	body := data[:len(data)-trailerBytes]
	trailer := data[len(data)-trailerBytes:]
	if binary.LittleEndian.Uint32(trailer[4:]) != trailerMagic {
		return nil, fmt.Errorf("csrz: bad trailer magic")
	}
	if got, want := binary.LittleEndian.Uint32(trailer[0:]), crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("csrz: checksum mismatch: file says %#x, computed %#x", got, want)
	}
	hdr := body[:headerBytes]
	if string(hdr[:8]) != formatMagic {
		return nil, fmt.Errorf("csrz: bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != formatVersion {
		return nil, fmt.Errorf("csrz: unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint32(hdr[12:])
	if flags&^uint32(flagWeighted) != 0 {
		return nil, fmt.Errorf("csrz: unknown flags %#x", flags)
	}
	n := binary.LittleEndian.Uint64(hdr[16:])
	m := binary.LittleEndian.Uint64(hdr[24:])
	nsec := binary.LittleEndian.Uint64(hdr[32:])
	if n > maxVertices || m > maxEdges {
		return nil, fmt.Errorf("csrz: implausible dimensions n=%d m=%d", n, m)
	}
	if nsec == 0 || nsec > maxSections {
		return nil, fmt.Errorf("csrz: implausible section count %d", nsec)
	}
	if uint64(len(body)) < headerBytes+24*nsec {
		return nil, fmt.Errorf("csrz: truncated section table")
	}
	g := &Graph{n: int(n), m: int(m)}
	seen := make(map[uint64]bool, nsec)
	for i := uint64(0); i < nsec; i++ {
		tab := body[headerBytes+24*i:]
		s := section{
			id:     binary.LittleEndian.Uint64(tab),
			off:    binary.LittleEndian.Uint64(tab[8:]),
			length: binary.LittleEndian.Uint64(tab[16:]),
		}
		if s.off%sectionAlign != 0 || s.off+s.length < s.off || s.off+s.length > uint64(len(body)) {
			return nil, fmt.Errorf("csrz: section %d has bad extent [%d,+%d)", s.id, s.off, s.length)
		}
		if seen[s.id] {
			return nil, fmt.Errorf("csrz: duplicate section %d", s.id)
		}
		seen[s.id] = true
		raw := body[s.off : s.off+s.length]
		var err error
		switch s.id {
		case secOutIdx:
			g.outIdx, err = u64view(raw)
		case secOutOff:
			g.outOff, err = u64view(raw)
		case secOutData:
			g.outData = raw
		case secOutW:
			g.outW, err = u32view(raw)
		case secInIdx:
			g.inIdx, err = u64view(raw)
		case secInOff:
			g.inOff, err = u64view(raw)
		case secInData:
			g.inData = raw
		case secInW:
			g.inW, err = u32view(raw)
		default:
			err = fmt.Errorf("csrz: unknown section id %d", s.id)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := checkSections(g, flags&flagWeighted != 0); err != nil {
		return nil, err
	}
	return g, nil
}

// u64view reinterprets a little-endian byte section as []uint64 —
// zero-copy on little-endian hosts (sections are page-aligned, so the
// 8-byte alignment unsafe.Slice needs always holds), decoded copy
// otherwise.
func u64view(b []byte) ([]uint64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("csrz: uint64 section length %d not a multiple of 8", len(b))
	}
	count := len(b) / 8
	if count == 0 {
		return []uint64{}, nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), count), nil
	}
	out := make([]uint64, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out, nil
}

func u32view(b []byte) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("csrz: uint32 section length %d not a multiple of 4", len(b))
	}
	count := len(b) / 4
	if count == 0 {
		return []uint32{}, nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), count), nil
	}
	out := make([]uint32, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out, nil
}
