// Package csrz is the compressed CSR backend: the same dual-CSR shape as
// internal/graph, with each neighbor list stored as byte-aligned
// delta+varint codes instead of 4-byte IDs, and an mmap-able on-disk
// container (.csrz) for zero-copy snapshot loading.
//
// Reordering is what makes this pay: conf_iiswc_FalduDG19-style
// lightweight reordering shrinks the |neighbor - previous neighbor| gaps
// that the varints encode, so "reorder, then compress" (the pipeline's
// |compress stage) turns locality directly into bytes.
// reorder.QualityReport.PredictedRatio computes the exact post-relabel
// out-direction varint cost from the same O(E) pass that measures
// AvgNeighborGap, so the advisor can predict the ratio before encoding.
//
// # Decode determinism
//
// Encoding preserves the stored order of every neighbor list (deltas are
// signed + zig-zag, not sorted-ascending), and decoding replays exactly
// that order. This is a contract, not an implementation detail: the
// engine's float accumulations (PageRank's pull sums, BC's dependency
// sums) are evaluated in neighbor-list order, so order preservation is
// what makes compressed runs bit-identical to plain runs — checksums are
// pinned against the plain backend in the differential tests. Both
// directions also keep the plain n+1 edge-index arrays, so parallel
// chunk balancing (par.BalancedBounds) splits work at exactly the same
// vertex boundaries as the plain backend.
//
// # Mmap retirement rules
//
// A Graph returned by OpenFile aliases a read-only file mapping; Close
// unmaps it, after which every AdjIter, neighbor slice, and index slice
// obtained from the Graph is invalid (touching one faults). The rules:
//
//  1. Only the owner (in graphd, the snapshot store) calls Close, and
//     only after the snapshot is unreachable from the published table
//     AND its reader refcount has drained to zero.
//  2. Readers never outlive their refcount: acquire, read, release.
//     An acquire that observes the snapshot retired must release and
//     retry against the fresh table instead of using the graph — the
//     owner may already have unmapped it. (Heap-backed snapshots can
//     tolerate use-after-retire because the GC keeps them alive; mapped
//     ones cannot, which is why the store's acquire path special-cases
//     closeable snapshots.)
//  3. Close is idempotent and safe to call from whichever of
//     publish/drop/last-release loses the race; sync.Once inside the
//     mapping does the arbitration.
//
// Heap-backed graphs (Encode, ReadCSRZ) have a no-op Close and no
// lifetime rules beyond the GC's.
package csrz
