package csrz

import (
	"fmt"
	"sync"

	"graphreorder/internal/graph"
)

// Graph is a compressed dual-CSR graph. Both directions keep the plain
// representation's n+1 edge-index array (so degrees, weight slicing and
// parallel chunk balancing behave exactly like *graph.Graph) but replace
// the 4-bytes-per-edge neighbor arrays with delta+varint byte streams,
// addressed by an n+1 byte-offset array. Weights, when present, stay raw
// uint32 (they have no locality structure to exploit) and are sliced by
// the edge-index array, index-aligned with the decoded neighbors.
//
// A Graph is immutable after construction and safe for concurrent use.
// When it was produced by OpenFile its arrays point into a shared
// read-only mapping; see Close.
type Graph struct {
	n, m int

	outIdx  []uint64 // edge offsets, len n+1; outIdx[n] == m
	outOff  []uint64 // byte offsets into outData, len n+1
	outData []byte
	outW    []uint32 // len m when weighted, else nil

	inIdx  []uint64
	inOff  []uint64
	inData []byte
	inW    []uint32

	mapping *mapping // non-nil when mmap-backed (OpenFile)
}

// interface conformance
var (
	_ graph.View             = (*Graph)(nil)
	_ graph.NeighborStreamer = (*Graph)(nil)
)

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.m }

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.outW != nil }

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v graph.VertexID) int {
	return int(g.outIdx[v+1] - g.outIdx[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v graph.VertexID) int {
	return int(g.inIdx[v+1] - g.inIdx[v])
}

// Degrees returns the per-vertex degree array of the requested kind.
// Degrees live in the index arrays, so this never touches the compressed
// adjacency bytes.
func (g *Graph) Degrees(kind graph.DegreeKind) []uint32 {
	d := make([]uint32, g.n)
	for v := 0; v < g.n; v++ {
		switch kind {
		case graph.InDegree:
			d[v] = uint32(g.InDegree(graph.VertexID(v)))
		case graph.OutDegree:
			d[v] = uint32(g.OutDegree(graph.VertexID(v)))
		case graph.TotalDegree:
			d[v] = uint32(g.InDegree(graph.VertexID(v)) + g.OutDegree(graph.VertexID(v)))
		default:
			panic(fmt.Sprintf("csrz: unknown DegreeKind %d", kind))
		}
	}
	return d
}

// OutWeights returns the weights aligned with v's out-neighbors, nil for
// unweighted graphs.
func (g *Graph) OutWeights(v graph.VertexID) []uint32 {
	if g.outW == nil {
		return nil
	}
	return g.outW[g.outIdx[v]:g.outIdx[v+1]]
}

// InWeights returns the weights aligned with v's in-neighbors, nil for
// unweighted graphs.
func (g *Graph) InWeights(v graph.VertexID) []uint32 {
	if g.inW == nil {
		return nil
	}
	return g.inW[g.inIdx[v]:g.inIdx[v+1]]
}

// OutNeighbors decodes v's out-neighbor list into a fresh slice, in
// stored order. This is the convenience path (query layer, tests); hot
// loops use OutIter or AppendOutNeighbors instead.
func (g *Graph) OutNeighbors(v graph.VertexID) []graph.VertexID {
	return g.AppendOutNeighbors(v, nil)
}

// InNeighbors decodes v's in-neighbor list into a fresh slice, in stored
// order.
func (g *Graph) InNeighbors(v graph.VertexID) []graph.VertexID {
	return g.AppendInNeighbors(v, nil)
}

// AppendOutNeighbors decodes v's out-neighbors into buf and returns it.
func (g *Graph) AppendOutNeighbors(v graph.VertexID, buf []graph.VertexID) []graph.VertexID {
	return appendList(buf, g.outData[g.outOff[v]:g.outOff[v+1]], v, g.OutDegree(v))
}

// AppendInNeighbors decodes v's in-neighbors into buf and returns it.
func (g *Graph) AppendInNeighbors(v graph.VertexID, buf []graph.VertexID) []graph.VertexID {
	return appendList(buf, g.inData[g.inOff[v]:g.inOff[v+1]], v, g.InDegree(v))
}

func appendList(buf []graph.VertexID, data []byte, v graph.VertexID, deg int) []graph.VertexID {
	it := AdjIter{data: data, prev: int64(v), rem: deg}
	for {
		u, ok := it.Next()
		if !ok {
			return buf
		}
		buf = append(buf, u)
	}
}

// OutEdgeIndex returns the out-direction edge-offset array (length n+1,
// identical semantics to graph.Graph.OutIndex). Read-only.
func (g *Graph) OutEdgeIndex() []uint64 { return g.outIdx }

// InEdgeIndex returns the in-direction edge-offset array. Read-only.
func (g *Graph) InEdgeIndex() []uint64 { return g.inIdx }

// OutIter returns a streaming decoder over v's out-neighbors. The
// iterator reads the compressed bytes in place — nothing is materialized.
func (g *Graph) OutIter(v graph.VertexID) AdjIter {
	return AdjIter{
		data: g.outData[g.outOff[v]:g.outOff[v+1]],
		prev: int64(v),
		rem:  g.OutDegree(v),
	}
}

// InIter returns a streaming decoder over v's in-neighbors.
func (g *Graph) InIter(v graph.VertexID) AdjIter {
	return AdjIter{
		data: g.inData[g.inOff[v]:g.inOff[v+1]],
		prev: int64(v),
		rem:  g.InDegree(v),
	}
}

// AdjIter streams one neighbor list. It is a value type: copy freely,
// no allocation, no cleanup. Valid only while the Graph it came from is
// retained (for mmap-backed graphs, until Close).
type AdjIter struct {
	data []byte
	prev int64
	rem  int
}

// Next returns the next neighbor in stored order, or ok=false when the
// list is exhausted.
func (it *AdjIter) Next() (graph.VertexID, bool) {
	if it.rem <= 0 {
		return 0, false
	}
	it.rem--
	// Inline LEB128 decode. The data stream was validated at
	// construction (Encode) or load (ReadCSRZ/OpenFile), so the
	// bounds check here is the slice's own.
	var x uint64
	var s uint
	i := 0
	for {
		c := it.data[i]
		i++
		if c < 0x80 {
			x |= uint64(c) << s
			break
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	it.data = it.data[i:]
	it.prev += unzigzag(x)
	return graph.VertexID(uint32(it.prev)), true
}

// Remaining returns how many neighbors are left to decode.
func (it *AdjIter) Remaining() int { return it.rem }

// Encode compresses g. The plain graph is not retained; weights (if any)
// are copied. Both directions encode concurrently.
func Encode(g *graph.Graph) *Graph {
	n, m := g.NumVertices(), g.NumEdges()
	z := &Graph{n: n, m: m}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		z.outIdx = append([]uint64(nil), g.OutIndex()...)
		z.outOff, z.outData = encodeDirection(g.OutIndex(), g.OutEdgeArray(), n)
		if g.Weighted() {
			z.outW = copyWeights(g, true)
		}
	}()
	go func() {
		defer wg.Done()
		z.inIdx = append([]uint64(nil), g.InIndex()...)
		z.inOff, z.inData = encodeDirection(g.InIndex(), g.InEdgeArray(), n)
		if g.Weighted() {
			z.inW = copyWeights(g, false)
		}
	}()
	wg.Wait()
	return z
}

func copyWeights(g *graph.Graph, out bool) []uint32 {
	w := make([]uint32, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		if out {
			w = append(w, g.OutWeights(graph.VertexID(v))...)
		} else {
			w = append(w, g.InWeights(graph.VertexID(v))...)
		}
	}
	return w
}

func encodeDirection(index []uint64, edges []graph.VertexID, n int) (off []uint64, data []byte) {
	off = make([]uint64, n+1)
	// First pass: exact byte size, so the data buffer allocates once.
	var total uint64
	for v := 0; v < n; v++ {
		off[v] = total
		prev := uint32(v)
		for _, u := range edges[index[v]:index[v+1]] {
			total += uint64(deltaLen(prev, uint32(u)))
			prev = uint32(u)
		}
	}
	off[n] = total
	data = make([]byte, 0, total)
	for v := 0; v < n; v++ {
		prev := uint32(v)
		for _, u := range edges[index[v]:index[v+1]] {
			data = appendUvarint(data, zigzag(int64(uint32(u))-int64(prev)))
			prev = uint32(u)
		}
	}
	return off, data
}

// Decode rebuilds a plain *graph.Graph (fresh arrays, independent of any
// mapping). Used when a .csrz snapshot must be reordered or mutated, and
// by round-trip tests.
func (g *Graph) Decode() (*graph.Graph, error) {
	outEdges := make([]graph.VertexID, 0, g.m)
	inEdges := make([]graph.VertexID, 0, g.m)
	for v := 0; v < g.n; v++ {
		outEdges = g.AppendOutNeighbors(graph.VertexID(v), outEdges)
		inEdges = g.AppendInNeighbors(graph.VertexID(v), inEdges)
	}
	var outW, inW []uint32
	if g.outW != nil {
		outW = append([]uint32(nil), g.outW...)
		inW = append([]uint32(nil), g.inW...)
	}
	return graph.NewFromCSR(g.n, g.m,
		append([]uint64(nil), g.outIdx...), outEdges, outW,
		append([]uint64(nil), g.inIdx...), inEdges, inW)
}

// Stats describes the space behavior of a compressed graph.
type Stats struct {
	Vertices int
	Edges    int
	Weighted bool

	// Adjacency-only byte counts: what the compression actually acts on.
	PlainAdjBytes      int64 // 4 bytes × m × 2 directions
	CompressedAdjBytes int64 // len(outData) + len(inData)
	OutAdjBytes        int64
	InAdjBytes         int64

	// Whole-representation resident sizes (indexes + weights included).
	ResidentBytes      int64
	PlainResidentBytes int64

	Ratio       float64 // PlainAdjBytes / CompressedAdjBytes
	BitsPerEdge float64 // compressed adjacency bits per directed edge (both dirs)
	MmapBacked  bool
	OnDiskBytes int64 // .csrz file size when mmap-backed, else 0
}

// Stats returns space statistics for g.
func (g *Graph) Stats() Stats {
	s := Stats{
		Vertices:    g.n,
		Edges:       g.m,
		Weighted:    g.Weighted(),
		OutAdjBytes: int64(len(g.outData)),
		InAdjBytes:  int64(len(g.inData)),
	}
	s.PlainAdjBytes = int64(g.m) * 4 * 2
	s.CompressedAdjBytes = s.OutAdjBytes + s.InAdjBytes
	idxBytes := int64(len(g.outIdx)+len(g.inIdx)) * 8
	offBytes := int64(len(g.outOff)+len(g.inOff)) * 8
	wBytes := int64(len(g.outW)+len(g.inW)) * 4
	s.ResidentBytes = s.CompressedAdjBytes + idxBytes + offBytes + wBytes
	s.PlainResidentBytes = s.PlainAdjBytes + idxBytes + wBytes
	if s.CompressedAdjBytes > 0 {
		s.Ratio = float64(s.PlainAdjBytes) / float64(s.CompressedAdjBytes)
	}
	if g.m > 0 {
		s.BitsPerEdge = float64(s.CompressedAdjBytes) * 8 / float64(2*g.m)
	}
	if g.mapping != nil {
		s.MmapBacked = true
		s.OnDiskBytes = g.mapping.size
	}
	return s
}

// Close releases the file mapping behind an OpenFile-loaded graph. After
// Close every iterator and slice obtained from g is invalid; callers
// (internal/server) must drain readers first — see the package contract
// in doc.go. Close is idempotent and a no-op for heap-backed graphs.
func (g *Graph) Close() error {
	if g.mapping == nil {
		return nil
	}
	return g.mapping.close()
}

// MmapBacked reports whether g's arrays live in a file mapping that
// Close will invalidate.
func (g *Graph) MmapBacked() bool { return g.mapping != nil }

// Closed reports whether Close has unmapped g's backing file. Heap-backed
// graphs are never closed. Safe to call concurrently with Close — the
// snapshot lifecycle tests use it to pin down exactly when the refcount
// protocol releases a mapping.
func (g *Graph) Closed() bool { return g.mapping != nil && g.mapping.isClosed() }

// validate fully decodes both directions, checking that every neighbor
// ID is in range and that every list consumes exactly its byte extent.
// Called on load paths (ReadCSRZ, OpenFile) before the graph is handed
// out, so that AdjIter can run without per-step validation.
func (g *Graph) validate() error {
	if err := validateDirection(g.outIdx, g.outOff, g.outData, g.n, g.m, "out"); err != nil {
		return err
	}
	return validateDirection(g.inIdx, g.inOff, g.inData, g.n, g.m, "in")
}

func validateDirection(idx, off []uint64, data []byte, n, m int, dir string) error {
	if len(idx) != n+1 || len(off) != n+1 {
		return fmt.Errorf("csrz: %s index length %d/%d, want %d", dir, len(idx), len(off), n+1)
	}
	if idx[0] != 0 || off[0] != 0 {
		return fmt.Errorf("csrz: %s index does not start at 0", dir)
	}
	if idx[n] != uint64(m) {
		return fmt.Errorf("csrz: %s edge count %d, want %d", dir, idx[n], m)
	}
	if off[n] != uint64(len(data)) {
		return fmt.Errorf("csrz: %s byte extent %d, want %d", dir, off[n], len(data))
	}
	for v := 0; v < n; v++ {
		if idx[v] > idx[v+1] || off[v] > off[v+1] {
			return fmt.Errorf("csrz: %s offsets not monotonic at vertex %d", dir, v)
		}
		deg := int(idx[v+1] - idx[v])
		b := data[off[v]:off[v+1]]
		prev := int64(v)
		for i := 0; i < deg; i++ {
			u, k := readUvarint(b)
			if k == 0 {
				return fmt.Errorf("csrz: %s list of vertex %d truncated", dir, v)
			}
			b = b[k:]
			prev += unzigzag(u)
			if prev < 0 || prev >= int64(n) {
				return fmt.Errorf("csrz: %s neighbor %d of vertex %d out of range", dir, prev, v)
			}
		}
		if len(b) != 0 {
			return fmt.Errorf("csrz: %s list of vertex %d has %d trailing bytes", dir, v, len(b))
		}
	}
	return nil
}
