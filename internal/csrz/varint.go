package csrz

// Neighbor lists are stored as byte-aligned LEB128 varints of zig-zag
// signed deltas: the first entry is delta(v, nbr[0]) and each subsequent
// entry is delta(nbr[i-1], nbr[i]). Deltas are signed because Relabel
// preserves the stored order of each list rather than re-sorting it, and
// bit-identical float accumulation (PR, BC) depends on that order — so
// the codec must round-trip arbitrary-order lists, not just ascending
// ones. Zig-zag keeps small |delta| cheap in either direction, which is
// exactly what locality-improving reorderings produce.

// zigzag maps a signed delta to an unsigned value with small magnitudes
// near zero: 0,-1,1,-2,2 → 0,1,2,3,4.
func zigzag(d int64) uint64 {
	return uint64((d << 1) ^ (d >> 63))
}

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// appendUvarint appends x to b in LEB128 order (7 bits per byte, low
// group first, high bit = continuation).
func appendUvarint(b []byte, x uint64) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}

// uvarintLen returns the encoded size of x in bytes (1..10).
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// deltaLen returns the encoded size in bytes of the zig-zag delta
// between prev and next. Shared by the encoder and the exact
// compression-ratio predictor in internal/reorder.
func deltaLen(prev, next uint32) int {
	return uvarintLen(zigzag(int64(next) - int64(prev)))
}

// DeltaCost is deltaLen for external callers: the exact on-wire byte
// cost of encoding neighbor next immediately after prev (or after the
// source vertex itself, for the first neighbor of a list). It is what
// makes reorder.QualityReport.PredictedRatio a prediction of *this*
// codec rather than a heuristic: summing DeltaCost over a layout's
// neighbor lists reproduces the encoder's byte count exactly.
func DeltaCost(prev, next uint32) int {
	return deltaLen(prev, next)
}

// maxUvarintBytes bounds a single encoded value: zigzag of a 33-bit
// signed delta needs at most 5 LEB128 bytes.
const maxUvarintBytes = 5

// readUvarint decodes one LEB128 value from b, returning the value and
// the number of bytes consumed; n == 0 means b was truncated or the
// encoding overran maxUvarintBytes (never produced by the encoder).
func readUvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < 0x80 {
			if i >= maxUvarintBytes {
				return 0, 0
			}
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
		if i+1 >= maxUvarintBytes {
			return 0, 0
		}
	}
	return 0, 0
}
