// Package obs is graphd's observability layer: per-request traces with
// span breakdowns, a bounded slow-query ring buffer, a sharded/sampled
// per-vertex heat accumulator, and Prometheus text exposition (writer
// plus a format validator usable as a CI gate).
//
// The design contract, shared with the serving layer that embeds it:
//
//   - Tracing is always-on but two-tier. Every traced request carries a
//     Trace whose cost is a small allocation plus one monotonic clock
//     read per span boundary — a handful of nanosecond-scale operations
//     against handlers that spend microseconds encoding JSON. A sampled
//     subset (Sampler, tuned by graphd's -trace-sample) is additionally
//     "detailed": eligible for per-round traversal stats and structured
//     request logs. ?debug=trace forces a detailed trace for one request.
//   - Spans never allocate on the steady path beyond the trace itself:
//     a Trace preallocates room for the spans one request can produce.
//   - Everything is safe for concurrent use: a singleflight leader may
//     append compute spans while the request goroutine times out and
//     serializes the trace.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed phase of a request, offset-relative to the trace
// start so a client can reconstruct the timeline without clock math.
type Span struct {
	// Name identifies the phase: cache, admit, queue, compute, flight,
	// encode.
	Name string `json:"name"`
	// StartUs is the offset from the trace's start, microseconds.
	StartUs float64 `json:"start_us"`
	// DurUs is the span's duration, microseconds.
	DurUs float64 `json:"dur_us"`
}

// maxSpans bounds one trace's span count; the serving path produces at
// most six, the cap just keeps a misbehaving caller from growing traces
// without bound.
const maxSpans = 16

// Trace accumulates one request's observability record. Create with
// NewTrace, thread through the request context (WithTrace/FromContext),
// finish with Finish. All methods are safe on a nil receiver, so
// call sites need no tracing-enabled checks.
type Trace struct {
	id       uint64
	route    string
	start    time.Time
	detailed bool

	mu     sync.Mutex
	spans  []Span
	rounds int
	edges  uint64
	status int
	total  time.Duration
}

// traceSeed and traceCtr generate process-unique trace IDs: a splitmix64
// walk seeded from the clock at init, one atomic add per trace.
var (
	traceSeed = uint64(time.Now().UnixNano())
	traceCtr  atomic.Uint64
)

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// 64-bit mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTrace starts a trace for one request on the named route. detailed
// marks it for per-round stats and request logging (the sampled tier).
func NewTrace(route string, detailed bool) *Trace {
	return &Trace{
		id:       splitmix64(traceSeed + traceCtr.Add(1)),
		route:    route,
		start:    time.Now(),
		detailed: detailed,
		spans:    make([]Span, 0, 8),
	}
}

// NewTraceWithID is NewTrace with an externally assigned ID: a service
// behind a routing tier adopts the caller's trace ID so one request
// keeps one identity across every hop. id 0 falls back to a fresh one.
func NewTraceWithID(route string, detailed bool, id uint64) *Trace {
	t := NewTrace(route, detailed)
	if id != 0 {
		t.id = id
	}
	return t
}

// ParseTraceID decodes the fixed-width hex form produced by IDString
// (an X-Trace-Id header value). It returns 0 for anything malformed,
// which callers treat as "no inbound trace ID".
func ParseTraceID(s string) uint64 {
	if len(s) != 16 {
		return 0
	}
	var id uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0
		}
		id = id<<4 | d
	}
	return id
}

// ID returns the trace's process-unique 64-bit ID (0 for a nil trace).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// IDString renders the trace ID as fixed-width hex.
func (t *Trace) IDString() string {
	if t == nil {
		return ""
	}
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := range b {
		b[i] = hex[(t.id>>uint(60-4*i))&0xf]
	}
	return string(b[:])
}

// Detailed reports whether the trace is in the sampled (detailed) tier.
func (t *Trace) Detailed() bool { return t != nil && t.detailed }

// Observe records a span named name that began at start and ends now.
func (t *Trace) Observe(name string, start time.Time) {
	if t == nil {
		return
	}
	end := time.Now()
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, Span{
			Name:    name,
			StartUs: us(start.Sub(t.start)),
			DurUs:   us(end.Sub(start)),
		})
	}
	t.mu.Unlock()
}

// Accumulate folds time into the span named name, creating it on first
// use: repeated phases (one fan-out per SSSP round, one call per shard)
// appear as a single span whose duration is the phase's total, instead
// of overflowing the span cap with near-identical entries. The span's
// start stays the earliest accumulated start.
func (t *Trace) Accumulate(name string, start time.Time) {
	if t == nil {
		return
	}
	end := time.Now()
	startUs, durUs := us(start.Sub(t.start)), us(end.Sub(start))
	t.mu.Lock()
	for i := range t.spans {
		if t.spans[i].Name == name {
			if startUs < t.spans[i].StartUs {
				t.spans[i].StartUs = startUs
			}
			t.spans[i].DurUs += durUs
			t.mu.Unlock()
			return
		}
	}
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, Span{Name: name, StartUs: startUs, DurUs: durUs})
	}
	t.mu.Unlock()
}

// Round records one completed traversal round (wired to the execution
// engine's Progress/RoundStats hook).
func (t *Trace) Round(edges uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rounds++
	t.edges += edges
	t.mu.Unlock()
}

// Finish seals the trace with the response status and total duration.
func (t *Trace) Finish(status int, total time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.status = status
	t.total = total
	t.mu.Unlock()
}

// Total returns the sealed total duration (0 before Finish).
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// TraceView is the JSON form of a finished trace — what ?debug=trace
// returns inline and /debug/slow serves from the ring.
type TraceView struct {
	ID    string `json:"id"`
	Route string `json:"route"`
	// Start is the wall-clock request start (RFC3339, millisecond
	// precision); span offsets are relative to it.
	Start   string  `json:"start"`
	Status  int     `json:"status"`
	TotalUs float64 `json:"total_us"`
	Spans   []Span  `json:"spans"`
	// Rounds/Edges summarize the traversal when the request ran one.
	Rounds int    `json:"rounds,omitempty"`
	Edges  uint64 `json:"edges,omitempty"`
	// Detailed marks the sampled tier (per-round stats were recorded).
	Detailed bool `json:"detailed,omitempty"`
}

// View snapshots the trace for serialization.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceView{
		ID:       t.IDString(),
		Route:    t.route,
		Start:    t.start.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		Status:   t.status,
		TotalUs:  us(t.total),
		Spans:    append([]Span(nil), t.spans...),
		Rounds:   t.rounds,
		Edges:    t.edges,
		Detailed: t.detailed,
	}
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }

// Sampler makes the per-request detailed-tier decision at a configured
// rate. The zero value never samples; NewSampler clamps the rate into
// [0, 1]. Sample costs one atomic add and one multiply.
type Sampler struct {
	threshold uint64 // sample when splitmix64(seq) < threshold
	ctr       atomic.Uint64
}

// NewSampler returns a sampler that admits roughly rate of requests
// (rate <= 0 admits none, rate >= 1 admits all).
func NewSampler(rate float64) *Sampler {
	s := &Sampler{}
	switch {
	case rate <= 0:
		s.threshold = 0
	case rate >= 1:
		s.threshold = ^uint64(0)
	default:
		s.threshold = uint64(rate * float64(1<<63) * 2)
	}
	return s
}

// Sample reports whether this request is in the detailed tier.
func (s *Sampler) Sample() bool {
	if s == nil || s.threshold == 0 {
		return false
	}
	if s.threshold == ^uint64(0) {
		return true
	}
	return splitmix64(traceSeed^s.ctr.Add(1)) < s.threshold
}
