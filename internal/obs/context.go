package obs

import "context"

type traceKey struct{}

// WithTrace returns ctx carrying t. A nil t returns ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. All Trace
// methods accept a nil receiver, so callers use the result directly.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
