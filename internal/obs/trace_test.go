package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Observe("cache", time.Now())
	tr.Round(10)
	tr.Finish(200, time.Millisecond)
	if tr.ID() != 0 || tr.IDString() != "" || tr.Detailed() || tr.Total() != 0 {
		t.Fatalf("nil trace leaked state: id=%d str=%q", tr.ID(), tr.IDString())
	}
	if v := tr.View(); v.ID != "" || len(v.Spans) != 0 {
		t.Fatalf("nil trace view not empty: %+v", v)
	}
}

func TestTraceSpansAndView(t *testing.T) {
	tr := NewTrace("neighbors", true)
	if len(tr.IDString()) != 16 {
		t.Fatalf("IDString length = %d, want 16", len(tr.IDString()))
	}
	start := time.Now()
	tr.Observe("cache", start)
	tr.Observe("compute", start)
	tr.Round(100)
	tr.Round(250)
	tr.Finish(200, 3*time.Millisecond)

	v := tr.View()
	if v.Route != "neighbors" || v.Status != 200 || !v.Detailed {
		t.Fatalf("view = %+v", v)
	}
	if v.TotalUs != 3000 {
		t.Fatalf("TotalUs = %v, want 3000", v.TotalUs)
	}
	if len(v.Spans) != 2 || v.Spans[0].Name != "cache" || v.Spans[1].Name != "compute" {
		t.Fatalf("spans = %+v", v.Spans)
	}
	if v.Rounds != 2 || v.Edges != 350 {
		t.Fatalf("rounds=%d edges=%d, want 2/350", v.Rounds, v.Edges)
	}
	// View must be a snapshot, not an alias.
	tr.Observe("encode", start)
	if len(v.Spans) != 2 {
		t.Fatal("view aliases live span slice")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("r", false)
	for i := 0; i < maxSpans+10; i++ {
		tr.Observe(fmt.Sprintf("s%d", i), time.Now())
	}
	if n := len(tr.View().Spans); n != maxSpans {
		t.Fatalf("span count = %d, want cap %d", n, maxSpans)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := NewTrace("r", false).ID()
		if id == 0 || seen[id] {
			t.Fatalf("duplicate or zero trace ID %#x at draw %d", id, i)
		}
		seen[id] = true
	}
}

func TestTraceConcurrentObserve(t *testing.T) {
	tr := NewTrace("r", true)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Round(1)
				_ = tr.View()
			}
		}()
	}
	wg.Wait()
	if v := tr.View(); v.Rounds != 800 {
		t.Fatalf("rounds = %d, want 800", v.Rounds)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context returned a trace")
	}
	tr := NewTrace("r", false)
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
	if WithTrace(context.Background(), nil) != context.Background() {
		t.Fatal("nil trace should not wrap the context")
	}
}

func TestSamplerRates(t *testing.T) {
	const draws = 20000
	cases := []struct {
		rate     float64
		min, max int
	}{
		{-1, 0, 0},
		{0, 0, 0},
		{1, draws, draws},
		{2, draws, draws},
		{0.5, draws * 4 / 10, draws * 6 / 10},
		{0.05, draws * 2 / 100, draws * 10 / 100},
	}
	for _, tc := range cases {
		s := NewSampler(tc.rate)
		hits := 0
		for i := 0; i < draws; i++ {
			if s.Sample() {
				hits++
			}
		}
		if hits < tc.min || hits > tc.max {
			t.Errorf("rate %v: %d/%d sampled, want [%d, %d]", tc.rate, hits, draws, tc.min, tc.max)
		}
	}
	var nilSampler *Sampler
	if nilSampler.Sample() {
		t.Fatal("nil sampler sampled")
	}
}

func TestSlowRingWraparound(t *testing.T) {
	r := NewSlowRing(3)
	for i := 0; i < 5; i++ {
		r.Add(TraceView{Status: i})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained = %d, want 3", len(got))
	}
	for i, want := range []int{4, 3, 2} {
		if got[i].Status != want {
			t.Fatalf("snapshot[%d].Status = %d, want %d (newest first)", i, got[i].Status, want)
		}
	}
}

func TestSlowRingPartial(t *testing.T) {
	r := NewSlowRing(8)
	r.Add(TraceView{Status: 1})
	r.Add(TraceView{Status: 2})
	got := r.Snapshot()
	if len(got) != 2 || got[0].Status != 2 || got[1].Status != 1 {
		t.Fatalf("snapshot = %+v", got)
	}
	if NewSlowRing(0).Snapshot() == nil {
		t.Fatal("default-sized ring snapshot should be non-nil empty")
	}
}

func TestSlowRingConcurrent(t *testing.T) {
	r := NewSlowRing(16)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Add(TraceView{})
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total = %d, want 800", r.Total())
	}
}

func TestTraceIDAdoption(t *testing.T) {
	up := NewTrace("router", false)
	id := ParseTraceID(up.IDString())
	if id != up.ID() {
		t.Fatalf("ParseTraceID(IDString) = %x, want %x", id, up.ID())
	}
	down := NewTraceWithID("shard", true, id)
	if down.ID() != up.ID() {
		t.Fatalf("adopted ID = %x, want %x", down.ID(), up.ID())
	}
	if down.IDString() != up.IDString() {
		t.Fatalf("adopted IDString = %q, want %q", down.IDString(), up.IDString())
	}
	// Zero or malformed inbound IDs fall back to a fresh identity.
	if tr := NewTraceWithID("shard", false, 0); tr.ID() == 0 {
		t.Fatal("zero inbound ID must yield a fresh trace ID")
	}
	for _, bad := range []string{"", "xyz", "0123456789abcde", "0123456789abcdeZ", "0123456789abcdef0"} {
		if got := ParseTraceID(bad); got != 0 {
			t.Fatalf("ParseTraceID(%q) = %x, want 0", bad, got)
		}
	}
}

func TestTraceAccumulate(t *testing.T) {
	tr := NewTrace("router", false)
	base := time.Now()
	tr.Accumulate("fanout", base.Add(-2*time.Millisecond))
	tr.Accumulate("fanout", base.Add(-3*time.Millisecond))
	tr.Accumulate("merge", base.Add(-time.Millisecond))
	v := tr.View()
	if len(v.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (accumulated)", len(v.Spans))
	}
	var fanout *Span
	for i := range v.Spans {
		if v.Spans[i].Name == "fanout" {
			fanout = &v.Spans[i]
		}
	}
	if fanout == nil {
		t.Fatal("no fanout span")
	}
	// Two accumulations of ~2ms and ~3ms must sum to at least 5ms.
	if fanout.DurUs < 5000 {
		t.Fatalf("fanout dur = %.0fus, want >= 5000", fanout.DurUs)
	}
	// Accumulate never overflows the cap: unique names beyond it are dropped,
	// existing names keep accumulating.
	for i := 0; i < 3*maxSpans; i++ {
		tr.Accumulate(fmt.Sprintf("s%d", i), base)
		tr.Accumulate("fanout", base)
	}
	if n := len(tr.View().Spans); n > maxSpans {
		t.Fatalf("spans = %d, want <= %d", n, maxSpans)
	}
}
