package obs

import (
	"sync"
	"testing"
)

func TestHeatBasic(t *testing.T) {
	h := NewHeat(10, 1)
	rec := h.Recorder()
	for i := 0; i < 5; i++ {
		rec.Touch(3)
	}
	rec.Touch(7)
	rec.Touch(-1) // ignored
	rec.Touch(10) // out of range, ignored

	rep := h.Report(2)
	if rep.Touches != 6 || rep.Distinct != 2 {
		t.Fatalf("touches=%d distinct=%d, want 6/2", rep.Touches, rep.Distinct)
	}
	if len(rep.Top) != 2 || rep.Top[0] != (VertexHeat{Vertex: 3, Touches: 5}) || rep.Top[1] != (VertexHeat{Vertex: 7, Touches: 1}) {
		t.Fatalf("top = %+v", rep.Top)
	}
	// 5 touches -> bucket 2 ([4,8)), 1 touch -> bucket 0.
	if len(rep.Histogram) != 3 || rep.Histogram[0] != 1 || rep.Histogram[2] != 1 {
		t.Fatalf("histogram = %v", rep.Histogram)
	}
}

func TestHeatNilAndZero(t *testing.T) {
	var h *Heat
	rec := h.Recorder()
	rec.Touch(0)
	if rep := h.Report(4); rep.Touches != 0 || len(rep.Top) != 0 {
		t.Fatalf("nil heat report = %+v", rep)
	}
	if h.SampleN() != 0 || h.Vertices() != 0 {
		t.Fatal("nil heat accessors leaked state")
	}
	var zero Toucher
	zero.Touch(5) // must not panic

	empty := NewHeat(0, 1)
	emptyRec := empty.Recorder()
	emptyRec.Touch(0)
	if rep := empty.Report(4); rep.Distinct != 0 {
		t.Fatalf("empty heat report = %+v", rep)
	}
}

func TestHeatTopKOrderAndTies(t *testing.T) {
	h := NewHeat(100, 1)
	rec := h.Recorder()
	// 40 and 60 tie at 2 touches; ties break toward the lower vertex.
	for _, v := range []int{5, 5, 5, 40, 40, 60, 60, 9} {
		rec.Touch(v)
	}
	rep := h.Report(3)
	want := []VertexHeat{{5, 3}, {40, 2}, {60, 2}}
	if len(rep.Top) != 3 {
		t.Fatalf("top = %+v", rep.Top)
	}
	for i := range want {
		if rep.Top[i] != want[i] {
			t.Fatalf("top[%d] = %+v, want %+v", i, rep.Top[i], want[i])
		}
	}
	set := rep.TopSet(2)
	if len(set) != 2 || !set[5] || !set[40] {
		t.Fatalf("top set = %v", set)
	}
	if got := rep.TopSet(99); len(got) != 3 {
		t.Fatalf("over-limit top set = %v", got)
	}
}

func TestHeatSamplingScalesCounts(t *testing.T) {
	const stride = 4
	h := NewHeat(4, stride)
	if h.SampleN() != stride {
		t.Fatalf("SampleN = %d, want %d", h.SampleN(), stride)
	}
	rec := h.Recorder()
	const touches = 4000
	for i := 0; i < touches; i++ {
		rec.Touch(1)
	}
	rep := h.Report(1)
	// Exactly touches/stride raw records, each scaled back up by stride.
	if rep.Touches != touches {
		t.Fatalf("scaled touches = %d, want %d", rep.Touches, touches)
	}
}

func TestHeatSamplingRandomPhase(t *testing.T) {
	// Many single-touch requests under stride N must record ~1/N of the
	// time thanks to the random phase, not zero.
	const stride, reqs = 8, 8000
	h := NewHeat(2, stride)
	for i := 0; i < reqs; i++ {
		rec := h.Recorder()
		rec.Touch(0)
	}
	rep := h.Report(1)
	want := uint64(reqs)
	if rep.Touches < want/2 || rep.Touches > want*2 {
		t.Fatalf("scaled touches = %d, want ~%d (random phase broken)", rep.Touches, want)
	}
}

func TestHeatLanes(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, maxHeatLanes},
		{1000, maxHeatLanes},
		{maxHeatBytes / 4, 1},     // 8M vertices: one lane fits the budget
		{maxHeatBytes / 4 / 4, 4}, // 2M vertices: 4 lanes
		{maxHeatBytes / 4 / 8, 8}, // 1M vertices: full width
		{maxHeatBytes, 1},         // huge graph still gets one lane
	}
	for _, tc := range cases {
		if got := heatLanes(tc.n); got != tc.want {
			t.Errorf("heatLanes(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestHeatConcurrent(t *testing.T) {
	h := NewHeat(64, 1)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := h.Recorder()
			for i := 0; i < perWorker; i++ {
				rec.Touch(i % 64)
			}
		}()
	}
	wg.Wait()
	rep := h.Report(64)
	if rep.Touches != workers*perWorker {
		t.Fatalf("touches = %d, want %d", rep.Touches, workers*perWorker)
	}
	if rep.Distinct != 64 {
		t.Fatalf("distinct = %d, want 64", rep.Distinct)
	}
}
