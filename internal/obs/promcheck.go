package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition is the in-repo Prometheus text-format checker: it
// parses an exposition stream line by line and enforces the grammar a
// real scraper relies on — valid metric and label names, TYPE declared
// before a family's first sample, no duplicate TYPE/HELP, parseable
// values, balanced label syntax. CI scrapes a running graphd and feeds
// the body through this (via cmd/promcheck), so a formatting regression
// fails the build instead of a production scrape.
//
// It returns the number of samples parsed and the families seen.
func ValidateExposition(r io.Reader) (samples int, families map[string]string, err error) {
	families = make(map[string]string)
	helped := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, families, helped); err != nil {
				return samples, families, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, families); err != nil {
			return samples, families, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, families, err
	}
	if samples == 0 {
		return samples, families, fmt.Errorf("no samples in exposition")
	}
	return samples, families, nil
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "summary": true,
	"histogram": true, "untyped": true,
}

func validateComment(line string, families map[string]string, helped map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("bad metric name %q in TYPE", name)
		}
		if !validTypes[typ] {
			return fmt.Errorf("bad type %q for %q", typ, name)
		}
		if _, dup := families[name]; dup {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		families[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("bad metric name %q in HELP", name)
		}
		if helped[name] {
			return fmt.Errorf("duplicate HELP for %q", name)
		}
		helped[name] = true
	}
	return nil
}

func validateSample(line string, families map[string]string) error {
	rest := line
	// Metric name runs to the first '{' or space.
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd < 0 {
		return fmt.Errorf("sample %q has no value", line)
	}
	name := rest[:nameEnd]
	if !validMetricName(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	family := familyOf(name, families)
	if family == "" {
		return fmt.Errorf("sample %q has no preceding TYPE declaration", name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		close := strings.LastIndex(rest, "}")
		if close < 0 {
			return fmt.Errorf("unterminated label set in %q", line)
		}
		if err := validateLabels(rest[1:close]); err != nil {
			return fmt.Errorf("sample %q: %w", name, err)
		}
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		// One value, optionally followed by a timestamp.
		return fmt.Errorf("sample %q: want value [timestamp], got %q", name, rest)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		if fields[0] != "NaN" && fields[0] != "+Inf" && fields[0] != "-Inf" {
			return fmt.Errorf("sample %q: bad value %q", name, fields[0])
		}
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %q: bad timestamp %q", name, fields[1])
		}
	}
	return nil
}

// familyOf resolves a sample name to its declared family, accounting
// for the _sum/_count/_bucket series of summaries and histograms.
func familyOf(name string, families map[string]string) string {
	if typ, ok := families[name]; ok {
		return typ
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		base, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		typ := families[base]
		if typ == "summary" || typ == "histogram" {
			if suffix == "_bucket" && typ != "histogram" {
				continue
			}
			return typ
		}
	}
	return ""
}

func validateLabels(s string) error {
	if s == "" {
		return nil
	}
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return fmt.Errorf("label %q missing '='", s)
		}
		lname := s[:eq]
		if !validLabelName(lname) {
			return fmt.Errorf("bad label name %q", lname)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, "\"") {
			return fmt.Errorf("label %q value not quoted", lname)
		}
		s = s[1:]
		// Scan the quoted value honoring escapes.
		end := -1
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '\\':
				i++
			case '"':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("label %q value unterminated", lname)
		}
		s = s[end+1:]
		if s == "" {
			return nil
		}
		if !strings.HasPrefix(s, ",") {
			return fmt.Errorf("junk after label %q", lname)
		}
		s = s[1:]
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
