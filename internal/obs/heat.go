package obs

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
)

// Heat is a low-overhead per-vertex touch-count accumulator: the query
// layer records which snapshot vertices live queries actually read, so
// the serving layer can compare the *observed* hot set against the
// degree-predicted one the reordering advisor uses (the paper treats
// degree as a static hotness proxy; Heat measures the real thing).
//
// Two mechanisms keep the write path cheap enough to leave on:
//
//   - Sharding: counters are striped across up to maxHeatLanes
//     independent lanes; each request's Toucher picks one lane
//     round-robin, so concurrent requests hammering the same hub vertex
//     spread across distinct cache lines. Lane count shrinks as the
//     vertex count grows, capping the total footprint near
//     maxHeatBytes.
//   - Sampling: with SampleN > 1 each Toucher records only every N-th
//     touch (random phase, so short requests are not systematically
//     dropped); reads scale raw counts back up by N.
//
// A touch is then one uncontended atomic add; reads (TopK, Histogram)
// pay an O(n·lanes) merge, which is /heat-endpoint and /metrics-scrape
// territory, not query-path territory.
type Heat struct {
	n       int
	sampleN uint32
	rr      atomic.Uint32
	lanes   [][]atomic.Uint32
}

const (
	// maxHeatLanes bounds the sharding width.
	maxHeatLanes = 8
	// maxHeatBytes is the approximate per-snapshot counter budget the
	// lane count is fitted to (the first lane always exists, so very
	// large graphs degrade to a single shared stripe rather than
	// losing telemetry).
	maxHeatBytes = 32 << 20
)

// heatLanes picks the lane count (a power of two in [1, maxHeatLanes])
// for an n-vertex accumulator.
func heatLanes(n int) int {
	lanes := maxHeatLanes
	for lanes > 1 && lanes*n*4 > maxHeatBytes {
		lanes /= 2
	}
	return lanes
}

// NewHeat creates an accumulator for n vertices recording every
// sampleN-th touch (sampleN < 1 means 1: record everything).
func NewHeat(n int, sampleN int) *Heat {
	if n < 0 {
		n = 0
	}
	if sampleN < 1 {
		sampleN = 1
	}
	h := &Heat{n: n, sampleN: uint32(sampleN)}
	h.lanes = make([][]atomic.Uint32, heatLanes(n))
	for i := range h.lanes {
		h.lanes[i] = make([]atomic.Uint32, n)
	}
	return h
}

// SampleN returns the configured touch-sampling stride.
func (h *Heat) SampleN() int {
	if h == nil {
		return 0
	}
	return int(h.sampleN)
}

// Vertices returns the accumulator's vertex-space size.
func (h *Heat) Vertices() int {
	if h == nil {
		return 0
	}
	return h.n
}

// Toucher records one request's touches into a single lane. The zero
// value (and any Toucher from a nil Heat) discards everything, so call
// sites need no enabled checks.
type Toucher struct {
	lane    []atomic.Uint32
	sampleN uint32
	phase   uint32
}

// Recorder returns a Toucher for one request, assigned to a lane
// round-robin. Cost: one atomic add (plus one cheap random draw when
// sampling is on).
func (h *Heat) Recorder() Toucher {
	if h == nil || h.n == 0 {
		return Toucher{}
	}
	t := Toucher{
		lane:    h.lanes[int(h.rr.Add(1))&(len(h.lanes)-1)],
		sampleN: h.sampleN,
	}
	if t.sampleN > 1 {
		// Random phase: a request touching fewer than sampleN vertices
		// still records with probability touches/sampleN.
		t.phase = rand.Uint32N(t.sampleN)
	}
	return t
}

// Touch records one vertex read. Out-of-range vertices (a stale cached
// vector predating growth, or shrinkage across epochs) are ignored.
func (t *Toucher) Touch(v int) {
	if t.lane == nil || v < 0 || v >= len(t.lane) {
		return
	}
	if t.sampleN > 1 {
		t.phase++
		if t.phase%t.sampleN != 0 {
			return
		}
	}
	t.lane[v].Add(1)
}

// VertexHeat is one vertex's estimated touch count.
type VertexHeat struct {
	Vertex  int    `json:"vertex"`
	Touches uint64 `json:"touches"`
}

// HeatReport is a merged read of the accumulator.
type HeatReport struct {
	// Touches is the estimated total touch count (raw recorded touches
	// scaled by SampleN).
	Touches uint64 `json:"touches"`
	// Distinct is how many vertices were touched at least once.
	Distinct int `json:"distinct"`
	// Top holds the K hottest vertices, descending by touches (ties
	// break toward the lower vertex ID).
	Top []VertexHeat `json:"top"`
	// Histogram buckets vertices by estimated touch count: bucket i
	// holds vertices with touches in [2^i, 2^(i+1)). Trailing empty
	// buckets are trimmed; untouched vertices are not counted.
	Histogram []uint64 `json:"histogram"`
}

// Report merges the lanes and returns the top-k hottest vertices plus
// the touch-count histogram. One O(n·lanes) pass.
func (h *Heat) Report(k int) HeatReport {
	var rep HeatReport
	if h == nil || h.n == 0 {
		return rep
	}
	if k < 0 {
		k = 0
	}
	var hist [33]uint64
	maxBucket := -1
	top := newHeatHeap(k)
	for v := 0; v < h.n; v++ {
		var c uint64
		for _, lane := range h.lanes {
			c += uint64(lane[v].Load())
		}
		if c == 0 {
			continue
		}
		c *= uint64(h.sampleN)
		rep.Touches += c
		rep.Distinct++
		b := bits.Len64(c) - 1
		hist[b]++
		if b > maxBucket {
			maxBucket = b
		}
		top.offer(VertexHeat{Vertex: v, Touches: c})
	}
	rep.Top = top.sorted()
	rep.Histogram = append([]uint64(nil), hist[:maxBucket+1]...)
	return rep
}

// TopSet returns the hottest vertices as a set, capped at limit — the
// observed hot set the divergence metric compares against the
// degree-predicted one.
func (rep HeatReport) TopSet(limit int) map[int]bool {
	if limit > len(rep.Top) {
		limit = len(rep.Top)
	}
	set := make(map[int]bool, limit)
	for _, vh := range rep.Top[:limit] {
		set[vh.Vertex] = true
	}
	return set
}

// heatHeap is a size-bounded min-heap keeping the k hottest vertices.
type heatHeap struct {
	k     int
	items []VertexHeat
}

func newHeatHeap(k int) *heatHeap {
	return &heatHeap{k: k, items: make([]VertexHeat, 0, min(k, 1024))}
}

// worse reports whether a ranks strictly below b (fewer touches, ties
// toward the higher vertex ID so results are deterministic).
func worse(a, b VertexHeat) bool {
	if a.Touches != b.Touches {
		return a.Touches < b.Touches
	}
	return a.Vertex > b.Vertex
}

func (hh *heatHeap) offer(v VertexHeat) {
	if hh.k == 0 {
		return
	}
	if len(hh.items) < hh.k {
		hh.items = append(hh.items, v)
		i := len(hh.items) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(hh.items[i], hh.items[parent]) {
				break
			}
			hh.items[i], hh.items[parent] = hh.items[parent], hh.items[i]
			i = parent
		}
		return
	}
	if !worse(hh.items[0], v) {
		return
	}
	hh.items[0] = v
	hh.down(0)
}

func (hh *heatHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(hh.items) && worse(hh.items[l], hh.items[small]) {
			small = l
		}
		if r < len(hh.items) && worse(hh.items[r], hh.items[small]) {
			small = r
		}
		if small == i {
			return
		}
		hh.items[i], hh.items[small] = hh.items[small], hh.items[i]
		i = small
	}
}

// sorted drains the heap into descending touch order.
func (hh *heatHeap) sorted() []VertexHeat {
	out := make([]VertexHeat, len(hh.items))
	for i := len(hh.items) - 1; i >= 0; i-- {
		out[i] = hh.items[0]
		hh.items[0] = hh.items[len(hh.items)-1]
		hh.items = hh.items[:len(hh.items)-1]
		hh.down(0)
	}
	return out
}
