package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4): the de-facto
// scrape format. The writer is deliberately tiny — families are
// declared once (HELP + TYPE), then samples stream out with ordered,
// escaped labels — and its output is held to the same grammar the
// in-repo validator (ValidateExposition) enforces, so the writer and
// the CI gate cannot drift apart.

// Label is one name="value" pair on a sample.
type Label struct{ Name, Value string }

// Prom writes Prometheus text exposition. Errors are sticky: check Err
// (or Flush) once at the end.
type Prom struct {
	w     *bufio.Writer
	err   error
	typed map[string]string // family -> declared type
}

// NewProm returns a writer targeting w.
func NewProm(w io.Writer) *Prom {
	return &Prom{w: bufio.NewWriter(w), typed: make(map[string]string)}
}

// Counter declares a counter family.
func (p *Prom) Counter(name, help string) { p.family(name, "counter", help) }

// Gauge declares a gauge family.
func (p *Prom) Gauge(name, help string) { p.family(name, "gauge", help) }

// Summary declares a summary family (quantile samples plus the _sum
// and _count series).
func (p *Prom) Summary(name, help string) { p.family(name, "summary", help) }

func (p *Prom) family(name, typ, help string) {
	if p.err != nil || p.typed[name] != "" {
		return
	}
	p.typed[name] = typ
	p.writeString("# HELP " + name + " " + escapeHelp(help) + "\n")
	p.writeString("# TYPE " + name + " " + typ + "\n")
}

// Sample emits one sample of a declared family. Labels are written in
// the order given; values are rendered in Go's shortest-roundtrip form.
func (p *Prom) Sample(name string, labels []Label, v float64) {
	p.series(name, "", labels, v)
}

// SummarySample emits one series of a summary family: suffix "" with a
// quantile label, or "_sum"/"_count".
func (p *Prom) SummarySample(name, suffix string, labels []Label, v float64) {
	p.series(name, suffix, labels, v)
}

func (p *Prom) series(name, suffix string, labels []Label, v float64) {
	if p.err != nil {
		return
	}
	p.writeString(name + suffix)
	if len(labels) > 0 {
		p.writeString("{")
		for i, l := range labels {
			if i > 0 {
				p.writeString(",")
			}
			p.writeString(l.Name + "=\"" + escapeLabel(l.Value) + "\"")
		}
		p.writeString("}")
	}
	p.writeString(" " + formatValue(v) + "\n")
}

// Flush drains the buffer and returns the first error encountered.
func (p *Prom) Flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// Err returns the first write error (nil if healthy).
func (p *Prom) Err() error { return p.err }

func (p *Prom) writeString(s string) {
	if p.err != nil {
		return
	}
	_, p.err = p.w.WriteString(s)
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	s = strings.ReplaceAll(s, "\"", `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// SortedKeys returns a map's keys in sorted order — exposition helpers
// emit per-route series deterministically so scrapes diff cleanly.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
