package obs

import "sync"

// SlowRing is a bounded ring buffer of finished trace views: the
// serving layer records every request slower than its threshold (and
// every server-fault response), newest entries evicting the oldest.
// It is the backing store of graphd's /debug/slow endpoint — a crash
// cart for "what was slow in the last few minutes" that needs no
// external collector.
type SlowRing struct {
	mu    sync.Mutex
	buf   []TraceView
	next  int
	count uint64
}

// NewSlowRing returns a ring holding up to n entries (n < 1 means 128).
func NewSlowRing(n int) *SlowRing {
	if n < 1 {
		n = 128
	}
	return &SlowRing{buf: make([]TraceView, 0, n)}
}

// Add records one trace view, evicting the oldest entry when full.
func (r *SlowRing) Add(v TraceView) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.next] = v
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.count++
	r.mu.Unlock()
}

// Total returns how many traces have ever been recorded (including
// evicted ones).
func (r *SlowRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Snapshot returns the retained traces, newest first.
func (r *SlowRing) Snapshot() []TraceView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceView, 0, len(r.buf))
	// Walk backwards from the most recently written slot.
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}
