package dynamic

import (
	"fmt"
	"testing"

	"graphreorder/internal/gen"
	"graphreorder/internal/graph"
	"graphreorder/internal/reorder"
	"graphreorder/internal/rng"
)

// scanRemove is the pre-index removal algorithm — a linear scan over the
// whole edge slice per deletion — kept as the benchmark baseline so CI
// can gate the indexed path against it.
func scanRemove(edges []graph.Edge, src, dst graph.VertexID) ([]graph.Edge, bool) {
	for i := range edges {
		if edges[i].Src == src && edges[i].Dst == dst {
			edges[i] = edges[len(edges)-1]
			return edges[:len(edges)-1], true
		}
	}
	return edges, false
}

// churnBatch builds one removal+reinsertion batch over existing edges, so
// the graph size is steady state across benchmark iterations.
func churnBatch(g *graph.Graph, r *rng.Rand, size int) []Update {
	edges := g.Edges()
	batch := make([]Update, 0, 2*size)
	for i := 0; i < size; i++ {
		e := edges[r.Intn(len(edges))]
		batch = append(batch,
			Update{Remove: true, Edge: e},
			Update{Edge: e})
	}
	return batch
}

// BenchmarkApplyRemove compares removal throughput with the (src,dst)
// multiset index against the old linear-scan baseline. Each op applies a
// batch of 256 remove+reinsert pairs on an ~57k-edge graph.
func BenchmarkApplyRemove(b *testing.B) {
	g, err := gen.Generate(gen.MustDataset("lj", gen.Small))
	if err != nil {
		b.Fatal(err)
	}
	const batchPairs = 256
	b.Run("indexed", func(b *testing.B) {
		d := FromGraph(g)
		r := rng.New(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			batch := churnBatch(g, r, batchPairs)
			b.StartTimer()
			if err := d.Apply(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(d.NumEdges()), "edges")
	})
	b.Run("scan", func(b *testing.B) {
		edges := g.Edges()
		r := rng.New(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			batch := churnBatch(g, r, batchPairs)
			b.StartTimer()
			for _, u := range batch {
				if u.Remove {
					var ok bool
					if edges, ok = scanRemove(edges, u.Edge.Src, u.Edge.Dst); !ok {
						b.Fatal("edge vanished")
					}
				} else {
					edges = append(edges, u.Edge)
				}
			}
		}
		b.ReportMetric(float64(len(edges)), "edges")
	})
}

// BenchmarkApplyInsert measures pure insertion batches (the common write
// in the serving path).
func BenchmarkApplyInsert(b *testing.B) {
	g, err := gen.Generate(gen.MustDataset("lj", gen.Small))
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{16, 256} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			d := FromGraph(g)
			r := rng.New(7)
			n := d.NumVertices()
			batch := make([]Update, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := range batch {
					batch[j] = Update{Edge: graph.Edge{
						Src: graph.VertexID(r.Intn(n)), Dst: graph.VertexID(r.Intn(n)), Weight: 1}}
				}
				b.StartTimer()
				if err := d.Apply(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReordererView measures the two publish paths the serving
// refresher alternates between: the cheap stale-permutation relabel and
// the full periodic re-reorder.
func BenchmarkReordererView(b *testing.B) {
	g, err := gen.Generate(gen.MustDataset("lj", gen.Small))
	if err != nil {
		b.Fatal(err)
	}
	bench := func(b *testing.B, every int) {
		d := FromGraph(g)
		r := NewReorderer(reorder.NewDBG(), graph.OutDegree, Policy{Every: every})
		if _, _, err := r.View(d); err != nil {
			b.Fatal(err)
		}
		rnd := rng.New(3)
		n := d.NumVertices()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := d.Apply([]Update{{Edge: graph.Edge{
				Src: graph.VertexID(rnd.Intn(n)), Dst: graph.VertexID(rnd.Intn(n)), Weight: 1}}}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, _, err := r.View(d); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(r.Refreshes), "refreshes")
	}
	b.Run("relabel", func(b *testing.B) { bench(b, 0) }) // never re-reorder: pure relabel cost
	b.Run("refresh", func(b *testing.B) { bench(b, 1) }) // re-reorder every batch: full cost
}
