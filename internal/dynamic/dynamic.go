// Package dynamic implements the evolving-graph deployment sketched in
// the paper's future-work section (§VIII-B): a stream of edge updates is
// interleaved with graph-analytic queries, and reordering is re-applied
// only at periodic intervals so its cost is amortized over many queries.
//
// The package provides a batched-update graph whose snapshots are the
// static CSR graphs the rest of the library consumes, and a Reorderer
// that owns the periodic-reordering policy. The paper's intuition —
// adding or removing some edges does not drastically change the degree
// distribution, so hot-vertex classification stays valid between
// reorderings — is exactly what the staleness policy encodes.
package dynamic

import (
	"fmt"

	"graphreorder/internal/graph"
	"graphreorder/internal/reorder"
)

// Update is one edge mutation.
type Update struct {
	// Remove distinguishes deletions from insertions.
	Remove bool
	Edge   graph.Edge
}

// edgeKey identifies one (src, dst) multiset bucket in the edge index.
type edgeKey struct {
	src, dst graph.VertexID
}

// Graph is a directed multigraph under batched mutation. It is not safe
// for concurrent use. Snapshots are cached until the next mutation.
//
// A batch is atomic: Apply either installs every update in the batch or
// leaves the graph exactly as it was, and the cached snapshot always
// reflects the current edge set. Removals are O(1) amortized via a
// (src, dst) → positions multiset index, and per-vertex degrees are
// maintained incrementally so degree-distribution checks (the paper's
// hot-vertex classification) never need to materialize a snapshot.
type Graph struct {
	n        int
	edges    []graph.Edge
	weighted bool

	index  map[edgeKey][]int // positions in edges holding each (src, dst) instance
	outDeg []int32
	inDeg  []int32

	snapshot *graph.Graph // nil when stale
	batches  int          // mutation batches applied since creation
}

// FromGraph starts a dynamic graph from a static snapshot.
func FromGraph(g *graph.Graph) *Graph {
	edges := g.Edges()
	d := &Graph{
		n:        g.NumVertices(),
		edges:    edges,
		weighted: g.Weighted(),
		index:    make(map[edgeKey][]int, len(edges)),
		outDeg:   make([]int32, g.NumVertices()),
		inDeg:    make([]int32, g.NumVertices()),
		snapshot: g,
	}
	for i, e := range edges {
		k := edgeKey{e.Src, e.Dst}
		d.index[k] = append(d.index[k], i)
		d.outDeg[e.Src]++
		d.inDeg[e.Dst]++
	}
	return d
}

// NumVertices returns the current vertex-space size.
func (d *Graph) NumVertices() int { return d.n }

// NumEdges returns the current edge count.
func (d *Graph) NumEdges() int { return len(d.edges) }

// Batches returns how many update batches have been applied.
func (d *Graph) Batches() int { return d.batches }

// OutDegree returns v's current out-degree (maintained incrementally).
func (d *Graph) OutDegree(v graph.VertexID) int { return int(d.outDeg[v]) }

// InDegree returns v's current in-degree (maintained incrementally).
func (d *Graph) InDegree(v graph.VertexID) int { return int(d.inDeg[v]) }

// AvgDegree returns the current mean out-degree.
func (d *Graph) AvgDegree() float64 {
	if d.n == 0 {
		return 0
	}
	return float64(len(d.edges)) / float64(d.n)
}

// Count returns how many (src, dst) edge instances are present.
func (d *Graph) Count(src, dst graph.VertexID) int {
	return len(d.index[edgeKey{src, dst}])
}

// AddVertices grows the vertex space by k and returns the first new ID.
// Non-positive k is a no-op (the vertex space never shrinks).
func (d *Graph) AddVertices(k int) graph.VertexID {
	first := graph.VertexID(d.n)
	if k <= 0 {
		return first
	}
	d.grow(k)
	d.snapshot = nil
	return first
}

func (d *Graph) grow(k int) {
	d.n += k
	d.outDeg = append(d.outDeg, make([]int32, k)...)
	d.inDeg = append(d.inDeg, make([]int32, k)...)
}

// Apply applies one batch of updates atomically. Insertions of edges
// with endpoints outside the vertex space and removals of absent edges
// are errors (removals delete one matching (src, dst) instance, ignoring
// weight); on error no update in the batch takes effect.
func (d *Graph) Apply(batch []Update) error {
	_, err := d.ApplyGrow(0, batch)
	return err
}

// ApplyGrow grows the vertex space by addVertices and applies batch as a
// single atomic operation: the batch is validated up front against the
// grown vertex space (so it may reference the new vertices), and on error
// nothing changes — not even the growth. It returns the first new vertex
// ID (meaningful only when addVertices > 0).
func (d *Graph) ApplyGrow(addVertices int, batch []Update) (graph.VertexID, error) {
	if addVertices < 0 {
		return 0, fmt.Errorf("dynamic: negative vertex growth %d", addVertices)
	}
	// Validation pass: check the whole batch against the current state
	// plus the batch's own net effect per (src, dst) bucket, so a
	// mid-batch error can never leave earlier updates applied. The delta
	// map exists only to let removals see earlier in-batch updates, so
	// it is allocated lazily on the first removal (backfilling the
	// inserts seen so far) — the common insert-only batch does no map
	// work at all here.
	n := d.n + addVertices
	var delta map[edgeKey]int
	for i, u := range batch {
		if int(u.Edge.Src) >= n || int(u.Edge.Dst) >= n {
			return 0, fmt.Errorf("dynamic: edge %d->%d outside vertex space [0,%d)",
				u.Edge.Src, u.Edge.Dst, n)
		}
		k := edgeKey{u.Edge.Src, u.Edge.Dst}
		if !u.Remove {
			if delta != nil {
				delta[k]++
			}
			continue
		}
		if delta == nil {
			delta = make(map[edgeKey]int)
			for _, p := range batch[:i] {
				delta[edgeKey{p.Edge.Src, p.Edge.Dst}]++
			}
		}
		if len(d.index[k])+delta[k] <= 0 {
			return 0, fmt.Errorf("dynamic: removing absent edge %d->%d", u.Edge.Src, u.Edge.Dst)
		}
		delta[k]--
	}
	// Mutation pass: cannot fail.
	first := graph.VertexID(d.n)
	d.grow(addVertices)
	for _, u := range batch {
		if u.Remove {
			d.remove(u.Edge.Src, u.Edge.Dst)
		} else {
			d.insert(u.Edge)
		}
	}
	d.batches++
	d.snapshot = nil
	return first, nil
}

func (d *Graph) insert(e graph.Edge) {
	k := edgeKey{e.Src, e.Dst}
	d.index[k] = append(d.index[k], len(d.edges))
	d.edges = append(d.edges, e)
	d.outDeg[e.Src]++
	d.inDeg[e.Dst]++
}

// remove deletes one (src, dst) instance, which validation has proven
// present: pop its position from the index bucket, swap the last edge
// into the hole, and repoint the moved edge's index entry.
func (d *Graph) remove(src, dst graph.VertexID) {
	k := edgeKey{src, dst}
	ids := d.index[k]
	pos := ids[len(ids)-1]
	if len(ids) == 1 {
		delete(d.index, k)
	} else {
		d.index[k] = ids[:len(ids)-1]
	}
	last := len(d.edges) - 1
	moved := d.edges[last]
	d.edges[pos] = moved
	d.edges = d.edges[:last]
	if pos != last {
		mk := edgeKey{moved.Src, moved.Dst}
		mids := d.index[mk]
		for i := len(mids) - 1; i >= 0; i-- {
			if mids[i] == last {
				mids[i] = pos
				break
			}
		}
	}
	d.outDeg[src]--
	d.inDeg[dst]--
}

// RestoreBatches overrides the batch counter, aligning it with an
// external mutation history: recovery replays write-ahead-log batches
// onto a checkpointed graph and must resume numbering where the log
// ended, and a rollback to a last-good snapshot must resume where that
// snapshot's history ended — in both cases the graph was rebuilt via
// FromGraph, whose counter starts at zero.
func (d *Graph) RestoreBatches(n int) {
	if n >= 0 {
		d.batches = n
	}
}

// Snapshot materializes the current graph as static CSR (cached until the
// next mutation).
func (d *Graph) Snapshot() (*graph.Graph, error) {
	if d.snapshot != nil {
		return d.snapshot, nil
	}
	g, err := graph.BuildWith(d.edges, graph.BuildOptions{
		NumVertices:   d.n,
		Weighted:      d.weighted,
		SortNeighbors: true,
	})
	if err != nil {
		return nil, err
	}
	d.snapshot = g
	return g, nil
}

// hotVector classifies every vertex as hot (degree >= average) under the
// given degree kind, from the incrementally maintained degrees.
func (d *Graph) hotVector(kind graph.DegreeKind) []bool {
	avg := d.AvgDegree()
	degs := d.outDeg
	if kind == graph.InDegree {
		degs = d.inDeg
	}
	hot := make([]bool, d.n)
	for v := range hot {
		hot[v] = float64(degs[v]) >= avg
	}
	return hot
}

// Policy configures when a Reorderer refreshes its ordering.
type Policy struct {
	// Every reorders after this many update batches; 0 disables periodic
	// reordering (the ordering from the last explicit Refresh persists).
	Every int
	// MaxHotDrift, when positive, additionally refreshes as soon as the
	// fraction of vertices whose hot/cold classification changed since
	// the last reordering exceeds it. This quantifies §VIII-B's premise
	// directly: the stale ordering is kept exactly while the hot set it
	// was built for still holds.
	MaxHotDrift float64
	// MinRefreshGain, when positive, consults the ordering-quality
	// metrics before a policy-due refresh: the full re-reorder is skipped
	// (the cheap stale-permutation relabel happens instead) unless the
	// predicted packing-factor gain of a fresh hub-packing ordering over
	// the current stale layout is at least this factor. This is the
	// paper's skew gate applied over time — mutations that do not degrade
	// hot-vertex packing never trigger the expensive recompute. Refreshes
	// forced by a vertex-space change are never skipped.
	MinRefreshGain float64
}

// Reorderer maintains a reordered view of a dynamic graph under a
// periodic-refresh policy. Queries run against the reordered snapshot;
// between refreshes the stale permutation is reused, per §VIII-B.
type Reorderer struct {
	tech   reorder.Technique
	kind   graph.DegreeKind
	policy Policy

	// Workers is the worker count for the CSR rebuilds a View performs
	// (refresh relabel and stale-permutation relabel alike); 0 or 1 pins
	// the sequential rebuild.
	Workers int

	perm            reorder.Permutation
	view            *graph.Graph
	batchesAtPerm   int
	lastViewBatches int
	hotAtPerm       []bool // hot classification when the ordering was computed
	// Refreshes counts how many times the ordering was recomputed.
	Refreshes int
	// Relabels counts cheap stale-permutation relabels between refreshes.
	Relabels int
	// GainSkips counts policy-due refreshes skipped because the predicted
	// packing-factor gain was below Policy.MinRefreshGain.
	GainSkips int
	// LastQuality is the ordering-quality report of the view produced by
	// the most recent refresh (zero until the first refresh). Relabel
	// reuses do not update it — consumers wanting the current layout's
	// quality after a relabel evaluate the view themselves.
	LastQuality reorder.QualityReport
}

// NewReorderer builds a Reorderer; the first View call performs the
// initial reordering.
func NewReorderer(tech reorder.Technique, kind graph.DegreeKind, policy Policy) *Reorderer {
	return &Reorderer{tech: tech, kind: kind, policy: policy, batchesAtPerm: -1}
}

// Seed installs an externally computed ordering of d as the Reorderer's
// current state, so the first View does not redo work the caller already
// performed (e.g. a snapshot-build pipeline that reordered the graph
// itself). view must be d's current snapshot relabeled by perm.
func (r *Reorderer) Seed(d *Graph, view *graph.Graph, perm reorder.Permutation) {
	r.perm = perm
	r.view = view
	r.batchesAtPerm = d.Batches()
	r.lastViewBatches = d.Batches()
	r.hotAtPerm = d.hotVector(r.kind)
	r.Refreshes++
}

// hotDrift returns the fraction of vertices whose hot/cold class changed
// since the ordering was computed.
func (r *Reorderer) hotDrift(d *Graph) float64 {
	if len(r.hotAtPerm) != d.n || d.n == 0 {
		return 1
	}
	now := d.hotVector(r.kind)
	changed := 0
	for v := range now {
		if now[v] != r.hotAtPerm[v] {
			changed++
		}
	}
	return float64(changed) / float64(d.n)
}

// View returns the reordered snapshot of d, refreshing the ordering if
// the policy says it is due. The returned permutation maps d's vertex IDs
// to the view's IDs (needed to translate query roots).
func (r *Reorderer) View(d *Graph) (*graph.Graph, reorder.Permutation, error) {
	g, err := d.Snapshot()
	if err != nil {
		return nil, nil, err
	}
	// A missing ordering or a changed vertex space forces a refresh; the
	// quality gate below must not override either.
	forced := r.batchesAtPerm < 0 || len(r.perm) != g.NumVertices()
	due := forced ||
		(r.policy.Every > 0 && d.Batches()-r.batchesAtPerm >= r.policy.Every)
	if !due && r.policy.MaxHotDrift > 0 && d.Batches() != r.batchesAtPerm {
		due = r.hotDrift(d) > r.policy.MaxHotDrift
	}
	if due && !forced && r.policy.MinRefreshGain > 0 {
		// Advisor gate: measure the snapshot's packing under the stale
		// permutation; if a fresh hub-packing ordering cannot beat it by
		// the configured factor, the cheap relabel below suffices.
		if reorder.Evaluate(g, r.kind, r.perm).PackingGain() < r.policy.MinRefreshGain {
			due = false
			r.GainSkips++
		}
	}
	if due {
		res, err := reorder.PlanOf(r.tech).ApplyWorkers(g, r.kind, r.Workers)
		if err != nil {
			return nil, nil, err
		}
		r.perm = res.Perm
		r.view = res.Graph
		r.LastQuality = res.Quality
		r.batchesAtPerm = d.Batches()
		r.lastViewBatches = d.Batches()
		r.hotAtPerm = d.hotVector(r.kind)
		r.Refreshes++
		return r.view, r.perm, nil
	}
	if r.view == nil || d.Batches() != r.lastViewBatches {
		// Stale permutation, fresh edges: relabel the current snapshot
		// with the old permutation (cheap compared to recomputing it, and
		// exactly the reuse §VIII-B argues for).
		view, err := g.RelabelWorkers(r.perm, r.Workers)
		if err != nil {
			return nil, nil, err
		}
		r.view = view
		r.lastViewBatches = d.Batches()
		r.Relabels++
	}
	return r.view, r.perm, nil
}
