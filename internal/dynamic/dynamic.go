// Package dynamic implements the evolving-graph deployment sketched in
// the paper's future-work section (§VIII-B): a stream of edge updates is
// interleaved with graph-analytic queries, and reordering is re-applied
// only at periodic intervals so its cost is amortized over many queries.
//
// The package provides a batched-update graph whose snapshots are the
// static CSR graphs the rest of the library consumes, and a Reorderer
// that owns the periodic-reordering policy. The paper's intuition —
// adding or removing some edges does not drastically change the degree
// distribution, so hot-vertex classification stays valid between
// reorderings — is exactly what the staleness policy encodes.
package dynamic

import (
	"fmt"

	"graphreorder/internal/graph"
	"graphreorder/internal/reorder"
)

// Update is one edge mutation.
type Update struct {
	// Remove distinguishes deletions from insertions.
	Remove bool
	Edge   graph.Edge
}

// Graph is a directed multigraph under batched mutation. It is not safe
// for concurrent use. Snapshots are cached until the next mutation.
type Graph struct {
	n        int
	edges    []graph.Edge
	weighted bool

	snapshot *graph.Graph // nil when stale
	batches  int          // mutation batches applied since creation
}

// FromGraph starts a dynamic graph from a static snapshot.
func FromGraph(g *graph.Graph) *Graph {
	return &Graph{
		n:        g.NumVertices(),
		edges:    g.Edges(),
		weighted: g.Weighted(),
		snapshot: g,
	}
}

// NumVertices returns the current vertex-space size.
func (d *Graph) NumVertices() int { return d.n }

// NumEdges returns the current edge count.
func (d *Graph) NumEdges() int { return len(d.edges) }

// Batches returns how many update batches have been applied.
func (d *Graph) Batches() int { return d.batches }

// AddVertices grows the vertex space by k and returns the first new ID.
func (d *Graph) AddVertices(k int) graph.VertexID {
	first := graph.VertexID(d.n)
	d.n += k
	d.snapshot = nil
	return first
}

// Apply applies one batch of updates. Insertions of edges with endpoints
// outside the vertex space and removals of absent edges are errors
// (removals delete one matching (src, dst) instance, ignoring weight).
func (d *Graph) Apply(batch []Update) error {
	for _, u := range batch {
		if int(u.Edge.Src) >= d.n || int(u.Edge.Dst) >= d.n {
			return fmt.Errorf("dynamic: edge %d->%d outside vertex space [0,%d)",
				u.Edge.Src, u.Edge.Dst, d.n)
		}
		if !u.Remove {
			d.edges = append(d.edges, u.Edge)
			continue
		}
		found := -1
		for i := range d.edges {
			if d.edges[i].Src == u.Edge.Src && d.edges[i].Dst == u.Edge.Dst {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("dynamic: removing absent edge %d->%d", u.Edge.Src, u.Edge.Dst)
		}
		d.edges[found] = d.edges[len(d.edges)-1]
		d.edges = d.edges[:len(d.edges)-1]
	}
	d.batches++
	d.snapshot = nil
	return nil
}

// Snapshot materializes the current graph as static CSR (cached until the
// next mutation).
func (d *Graph) Snapshot() (*graph.Graph, error) {
	if d.snapshot != nil {
		return d.snapshot, nil
	}
	g, err := graph.BuildWith(d.edges, graph.BuildOptions{
		NumVertices:   d.n,
		Weighted:      d.weighted,
		SortNeighbors: true,
	})
	if err != nil {
		return nil, err
	}
	d.snapshot = g
	return g, nil
}

// Policy configures when a Reorderer refreshes its ordering.
type Policy struct {
	// Every reorders after this many update batches; 0 disables periodic
	// reordering (the ordering from the last explicit Refresh persists).
	Every int
}

// Reorderer maintains a reordered view of a dynamic graph under a
// periodic-refresh policy. Queries run against the reordered snapshot;
// between refreshes the stale permutation is reused, per §VIII-B.
type Reorderer struct {
	tech   reorder.Technique
	kind   graph.DegreeKind
	policy Policy

	perm            reorder.Permutation
	view            *graph.Graph
	batchesAtPerm   int
	lastViewBatches int
	// Refreshes counts how many times the ordering was recomputed.
	Refreshes int
}

// NewReorderer builds a Reorderer; the first View call performs the
// initial reordering.
func NewReorderer(tech reorder.Technique, kind graph.DegreeKind, policy Policy) *Reorderer {
	return &Reorderer{tech: tech, kind: kind, policy: policy, batchesAtPerm: -1}
}

// View returns the reordered snapshot of d, refreshing the ordering if
// the policy says it is due. The returned permutation maps d's vertex IDs
// to the view's IDs (needed to translate query roots).
func (r *Reorderer) View(d *Graph) (*graph.Graph, reorder.Permutation, error) {
	g, err := d.Snapshot()
	if err != nil {
		return nil, nil, err
	}
	due := r.batchesAtPerm < 0 || // never ordered
		len(r.perm) != g.NumVertices() || // vertex space changed
		(r.policy.Every > 0 && d.Batches()-r.batchesAtPerm >= r.policy.Every)
	if due {
		res, err := reorder.Apply(g, r.tech, r.kind)
		if err != nil {
			return nil, nil, err
		}
		r.perm = res.Perm
		r.view = res.Graph
		r.batchesAtPerm = d.Batches()
		r.lastViewBatches = d.Batches()
		r.Refreshes++
		return r.view, r.perm, nil
	}
	if r.view == nil || d.Batches() != r.lastViewBatches {
		// Stale permutation, fresh edges: relabel the current snapshot
		// with the old permutation (cheap compared to recomputing it, and
		// exactly the reuse §VIII-B argues for).
		view, err := g.Relabel(r.perm)
		if err != nil {
			return nil, nil, err
		}
		r.view = view
		r.lastViewBatches = d.Batches()
	}
	return r.view, r.perm, nil
}
