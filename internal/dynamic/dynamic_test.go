package dynamic

import (
	"math"
	"testing"

	"graphreorder/internal/apps"
	"graphreorder/internal/gen"
	"graphreorder/internal/graph"
	"graphreorder/internal/reorder"
)

func base(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.MustDataset("lj", gen.Tiny))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromGraphRoundTrip(t *testing.T) {
	g := base(t)
	d := FromGraph(g)
	if d.NumVertices() != g.NumVertices() || d.NumEdges() != g.NumEdges() {
		t.Fatalf("dimensions changed: %d/%d", d.NumVertices(), d.NumEdges())
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap != g {
		t.Error("initial snapshot should be the original graph (cached)")
	}
}

func TestApplyInsertAndRemove(t *testing.T) {
	g := base(t)
	d := FromGraph(g)
	m0 := d.NumEdges()

	// Insert two edges, remove one existing edge.
	victim := g.Edges()[0]
	err := d.Apply([]Update{
		{Edge: graph.Edge{Src: 0, Dst: 1, Weight: 3}},
		{Edge: graph.Edge{Src: 1, Dst: 2, Weight: 4}},
		{Remove: true, Edge: victim},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumEdges() != m0+1 {
		t.Fatalf("edge count %d, want %d", d.NumEdges(), m0+1)
	}
	if d.Batches() != 1 {
		t.Fatalf("batches %d, want 1", d.Batches())
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumEdges() != m0+1 {
		t.Error("snapshot out of sync")
	}
	if err := snap.Validate(); err != nil {
		t.Error(err)
	}
}

func TestApplyRejectsBadUpdates(t *testing.T) {
	d := FromGraph(base(t))
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: 0, Dst: 1 << 30}}}); err == nil {
		t.Error("out-of-range insert accepted")
	}
	if err := d.Apply([]Update{{Remove: true, Edge: graph.Edge{Src: 0, Dst: 0}}}); err == nil {
		// lj generator never emits self-loops, so this edge is absent.
		t.Error("absent-edge removal accepted")
	}
}

// TestApplyMidBatchErrorIsAtomic pins the batch-atomicity contract: a
// batch that fails partway must leave no trace — in particular, earlier
// insertions must not linger in the edge set while Snapshot() keeps
// serving the stale cached graph without them. (The pre-fix Apply
// mutated d.edges before hitting the error and returned without
// invalidating the snapshot, so NumEdges() and Snapshot().NumEdges()
// disagreed; this test fails on that code.)
func TestApplyMidBatchErrorIsAtomic(t *testing.T) {
	g := base(t)
	d := FromGraph(g)
	m0 := d.NumEdges()

	err := d.Apply([]Update{
		{Edge: graph.Edge{Src: 0, Dst: 1, Weight: 9}},    // valid insert
		{Remove: true, Edge: graph.Edge{Src: 0, Dst: 0}}, // absent: lj has no self-loops
		{Edge: graph.Edge{Src: 2, Dst: 3, Weight: 9}},    // never reached
	})
	if err == nil {
		t.Fatal("mid-batch absent-edge removal accepted")
	}
	if d.NumEdges() != m0 {
		t.Fatalf("failed batch mutated the graph: %d edges, want %d", d.NumEdges(), m0)
	}
	if d.Batches() != 0 {
		t.Fatalf("failed batch counted: batches = %d", d.Batches())
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumEdges() != m0 {
		t.Fatalf("snapshot out of sync after failed batch: %d edges, want %d", snap.NumEdges(), m0)
	}
	if snap != g {
		t.Error("failed batch invalidated the cached snapshot needlessly")
	}
	// The valid prefix applies cleanly afterwards.
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: 0, Dst: 1, Weight: 9}}}); err != nil {
		t.Fatal(err)
	}
	if d.NumEdges() != m0+1 {
		t.Fatalf("edges after retry = %d, want %d", d.NumEdges(), m0+1)
	}
}

func TestApplyBatchInternalDependencies(t *testing.T) {
	d := FromGraph(base(t))
	m0 := d.NumEdges()
	// Removing an edge inserted earlier in the same batch is legal...
	e := graph.Edge{Src: 5, Dst: 5, Weight: 1} // self-loop: absent in lj
	if err := d.Apply([]Update{{Edge: e}, {Remove: true, Edge: e}}); err != nil {
		t.Fatal(err)
	}
	if d.NumEdges() != m0 || d.Count(5, 5) != 0 {
		t.Fatalf("insert+remove left %d edges, count(5,5)=%d", d.NumEdges(), d.Count(5, 5))
	}
	// ...but removing before the insert follows sequential semantics.
	if err := d.Apply([]Update{{Remove: true, Edge: e}, {Edge: e}}); err == nil {
		t.Error("remove-before-insert of an absent edge accepted")
	}
	if d.NumEdges() != m0 {
		t.Fatalf("failed batch changed edge count to %d", d.NumEdges())
	}
}

func TestIncrementalDegreesAndIndex(t *testing.T) {
	g := base(t)
	d := FromGraph(g)
	for v := 0; v < g.NumVertices(); v++ {
		id := graph.VertexID(v)
		if d.OutDegree(id) != g.OutDegree(id) || d.InDegree(id) != g.InDegree(id) {
			t.Fatalf("initial degrees diverge at %d", v)
		}
	}
	victim := g.Edges()[0]
	err := d.Apply([]Update{
		{Edge: graph.Edge{Src: 0, Dst: 1, Weight: 1}},
		{Edge: graph.Edge{Src: 0, Dst: 1, Weight: 2}}, // multiset: second instance
		{Remove: true, Edge: victim},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCount := countEdge(g, 0, 1) + 2
	if victim.Src == 0 && victim.Dst == 1 {
		wantCount--
	}
	if d.Count(0, 1) != wantCount {
		t.Fatalf("Count(0,1) = %d, want %d", d.Count(0, 1), wantCount)
	}
	// Degrees track the mutations, and agree with a fresh snapshot.
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < d.NumVertices(); v++ {
		id := graph.VertexID(v)
		if d.OutDegree(id) != snap.OutDegree(id) || d.InDegree(id) != snap.InDegree(id) {
			t.Fatalf("incremental degree diverges from snapshot at %d: out %d/%d in %d/%d",
				v, d.OutDegree(id), snap.OutDegree(id), d.InDegree(id), snap.InDegree(id))
		}
	}
}

// TestRemovalChurnIndexConsistency hammers the swap-remove bookkeeping:
// after heavy interleaved insert/remove churn the index must still agree
// with a from-scratch recount.
func TestRemovalChurnIndexConsistency(t *testing.T) {
	g := base(t)
	d := FromGraph(g)
	n := graph.VertexID(d.NumVertices())
	for round := 0; round < 50; round++ {
		var batch []Update
		for i := 0; i < 20; i++ {
			batch = append(batch, Update{Edge: graph.Edge{
				Src: graph.VertexID(round+i) % n, Dst: graph.VertexID(3*round+2*i+1) % n, Weight: 1}})
		}
		if err := d.Apply(batch); err != nil {
			t.Fatal(err)
		}
		// Remove half of what this round inserted, in reverse order.
		var removals []Update
		for i := 19; i >= 10; i-- {
			removals = append(removals, Update{Remove: true, Edge: batch[i].Edge})
		}
		if err := d.Apply(removals); err != nil {
			t.Fatal(err)
		}
	}
	fresh := FromGraph(mustSnapshot(t, d))
	for v := 0; v < d.NumVertices(); v++ {
		id := graph.VertexID(v)
		if d.OutDegree(id) != fresh.OutDegree(id) {
			t.Fatalf("out-degree drift at %d: %d vs %d", v, d.OutDegree(id), fresh.OutDegree(id))
		}
	}
	counts := make(map[[2]graph.VertexID]int)
	for _, e := range mustSnapshot(t, d).Edges() {
		counts[[2]graph.VertexID{e.Src, e.Dst}]++
	}
	for k, want := range counts {
		if got := d.Count(k[0], k[1]); got != want {
			t.Fatalf("index drift at %v: %d vs %d", k, got, want)
		}
	}
}

func mustSnapshot(t *testing.T, d *Graph) *graph.Graph {
	t.Helper()
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func countEdge(g *graph.Graph, src, dst graph.VertexID) int {
	n := 0
	for _, v := range g.OutNeighbors(src) {
		if v == dst {
			n++
		}
	}
	return n
}

func TestApplyGrowAtomic(t *testing.T) {
	d := FromGraph(base(t))
	n0, m0 := d.NumVertices(), d.NumEdges()
	// A failing batch must roll back the growth too.
	_, err := d.ApplyGrow(4, []Update{
		{Edge: graph.Edge{Src: graph.VertexID(n0), Dst: 0, Weight: 1}},
		{Remove: true, Edge: graph.Edge{Src: 0, Dst: 0}},
	})
	if err == nil {
		t.Fatal("bad batch accepted")
	}
	if d.NumVertices() != n0 || d.NumEdges() != m0 {
		t.Fatalf("failed ApplyGrow left n=%d m=%d, want %d/%d", d.NumVertices(), d.NumEdges(), n0, m0)
	}
	// A good batch may wire up the new vertices it grows.
	first, err := d.ApplyGrow(4, []Update{
		{Edge: graph.Edge{Src: graph.VertexID(n0), Dst: 0, Weight: 1}},
		{Edge: graph.Edge{Src: 0, Dst: graph.VertexID(n0 + 3), Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(first) != n0 || d.NumVertices() != n0+4 || d.NumEdges() != m0+2 {
		t.Fatalf("ApplyGrow: first=%d n=%d m=%d", first, d.NumVertices(), d.NumEdges())
	}
	if d.OutDegree(first) != 1 || d.InDegree(graph.VertexID(n0+3)) != 1 {
		t.Error("degrees of grown vertices wrong")
	}
}

func TestReordererHotDriftRefresh(t *testing.T) {
	g := base(t)
	d := FromGraph(g)
	r := NewReorderer(reorder.NewDBG(), graph.OutDegree, Policy{Every: 0, MaxHotDrift: 0.05})
	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	// A tiny batch must not trip the drift trigger.
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: 0, Dst: 1, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 1 {
		t.Fatalf("small batch triggered a refresh (count %d)", r.Refreshes)
	}
	if r.Relabels != 1 {
		t.Fatalf("relabels = %d, want 1", r.Relabels)
	}
	// Promote a large cold cohort to hot: classification drift must force
	// a refresh even though Every is disabled.
	snap := mustSnapshot(t, d)
	avg := int(snap.AvgDegree()) + 2
	var batch []Update
	n := d.NumVertices()
	for v := 0; v < n/3; v++ {
		if d.OutDegree(graph.VertexID(v)) > 0 {
			continue // already contributes; pick only isolated-ish sources
		}
		for i := 0; i < avg; i++ {
			batch = append(batch, Update{Edge: graph.Edge{
				Src: graph.VertexID(v), Dst: graph.VertexID((v + i + 1) % n), Weight: 1}})
		}
	}
	if len(batch) == 0 {
		t.Skip("dataset has no zero-out-degree vertices to promote")
	}
	if err := d.Apply(batch); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 2 {
		t.Errorf("hot-set drift did not force a refresh (count %d, drift %.3f)", r.Refreshes, r.hotDrift(d))
	}
}

func TestReordererSeed(t *testing.T) {
	g := base(t)
	d := FromGraph(g)
	res, err := reorder.Apply(g, reorder.NewDBG(), graph.OutDegree)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReorderer(reorder.NewDBG(), graph.OutDegree, Policy{Every: 2})
	r.Seed(d, res.Graph, res.Perm)
	if r.Refreshes != 1 {
		t.Fatalf("seed not counted as the initial ordering (count %d)", r.Refreshes)
	}
	// The first View must reuse the seeded ordering verbatim.
	view, perm, err := r.View(d)
	if err != nil {
		t.Fatal(err)
	}
	if view != res.Graph || &perm[0] != &res.Perm[0] {
		t.Error("seeded ordering not reused")
	}
	if r.Refreshes != 1 {
		t.Errorf("View after Seed refreshed (count %d)", r.Refreshes)
	}
	// One batch: relabel reuse; second batch: policy refresh.
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: 0, Dst: 1, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 1 || r.Relabels != 1 {
		t.Errorf("after one batch: refreshes=%d relabels=%d, want 1/1", r.Refreshes, r.Relabels)
	}
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: 1, Dst: 2, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 2 {
		t.Errorf("policy refresh after seed not triggered (count %d)", r.Refreshes)
	}
}

func TestAddVertices(t *testing.T) {
	d := FromGraph(base(t))
	n0 := d.NumVertices()
	if got := d.AddVertices(-3); int(got) != n0 || d.NumVertices() != n0 {
		t.Fatalf("negative growth not a no-op: first=%d n=%d", got, d.NumVertices())
	}
	first := d.AddVertices(10)
	if int(first) != n0 || d.NumVertices() != n0+10 {
		t.Fatalf("AddVertices: first=%d n=%d", first, d.NumVertices())
	}
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: first, Dst: 0, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.OutDegree(first) != 1 {
		t.Error("new vertex's edge missing")
	}
}

func TestReordererRefreshPolicy(t *testing.T) {
	g := base(t)
	d := FromGraph(g)
	r := NewReorderer(reorder.NewDBG(), graph.OutDegree, Policy{Every: 2})

	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 1 {
		t.Fatalf("initial refresh count %d, want 1", r.Refreshes)
	}
	// One batch: policy Every=2 not due, must reuse the stale perm.
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: 1, Dst: 2, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	_, perm1, err := r.View(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 1 {
		t.Errorf("refreshed too early (count %d)", r.Refreshes)
	}
	// Second batch: refresh due.
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: 2, Dst: 3, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	_, perm2, err := r.View(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 2 {
		t.Errorf("refresh not triggered (count %d)", r.Refreshes)
	}
	if err := perm1.Validate(); err != nil {
		t.Error(err)
	}
	if err := perm2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReordererVertexGrowthForcesRefresh(t *testing.T) {
	d := FromGraph(base(t))
	r := NewReorderer(reorder.HubCluster{}, graph.OutDegree, Policy{Every: 1000})
	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	d.AddVertices(5)
	if err := d.Apply(nil); err != nil {
		t.Fatal(err)
	}
	_, perm, err := r.View(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 2 {
		t.Errorf("vertex growth did not force refresh (count %d)", r.Refreshes)
	}
	if len(perm) != d.NumVertices() {
		t.Errorf("perm length %d, want %d", len(perm), d.NumVertices())
	}
}

func TestQueriesAgreeAcrossPolicies(t *testing.T) {
	// PR on the reordered view must equal PR on the raw snapshot no matter
	// how stale the permutation is — relabeling never changes results.
	g := base(t)
	d := FromGraph(g)
	r := NewReorderer(reorder.NewDBG(), graph.OutDegree, Policy{Every: 0}) // never refresh after first
	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	// Mutate heavily: double some hub's in-degree.
	var batch []Update
	for i := 0; i < 200; i++ {
		batch = append(batch, Update{Edge: graph.Edge{
			Src: graph.VertexID(i % d.NumVertices()), Dst: 7, Weight: 1}})
	}
	if err := d.Apply(batch); err != nil {
		t.Fatal(err)
	}
	view, _, err := r.View(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 1 {
		t.Fatalf("policy Every=0 must never refresh again (count %d)", r.Refreshes)
	}
	snap, _ := d.Snapshot()
	if view.NumEdges() != snap.NumEdges() {
		t.Fatalf("view has %d edges, snapshot %d", view.NumEdges(), snap.NumEdges())
	}
	pr1, _, _ := apps.PageRank(snap, 10, 1, nil)
	pr2, _, _ := apps.PageRank(view, 10, 1, nil)
	var s1, s2 float64
	for i := range pr1 {
		s1 += pr1[i]
		s2 += pr2[i]
	}
	if math.Abs(s1-s2) > 1e-9 {
		t.Errorf("rank mass diverged: %v vs %v", s1, s2)
	}
}

func TestStaleOrderingStillPacksMostHubs(t *testing.T) {
	// §VIII-B's premise: after moderate mutation, the hot set barely
	// changes, so the stale DBG ordering still packs most hot vertices
	// into the hot region. Quantify: fraction of currently-hot vertices
	// whose stale new-ID falls in the first third of the ID space.
	g := base(t)
	d := FromGraph(g)
	r := NewReorderer(reorder.NewDBG(), graph.OutDegree, Policy{Every: 0})
	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	// Mutate ~5% of edges.
	var batch []Update
	edges := g.Edges()
	for i := 0; i < len(edges)/20; i++ {
		batch = append(batch, Update{Edge: graph.Edge{
			Src: edges[i].Dst, Dst: edges[i].Src, Weight: 1}})
	}
	if err := d.Apply(batch); err != nil {
		t.Fatal(err)
	}
	view, perm, err := r.View(d)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := d.Snapshot()
	avg := snap.AvgDegree()
	hot, packed := 0, 0
	cutoff := graph.VertexID(snap.NumVertices() / 3)
	for v := 0; v < snap.NumVertices(); v++ {
		if float64(snap.OutDegree(graph.VertexID(v))) >= avg {
			hot++
			if perm[v] < cutoff {
				packed++
			}
		}
	}
	if hot == 0 {
		t.Fatal("no hot vertices")
	}
	if frac := float64(packed) / float64(hot); frac < 0.8 {
		t.Errorf("stale ordering packs only %.2f of hot vertices", frac)
	}
	_ = view
}

func TestReordererMinRefreshGainSkipsPackedRefreshes(t *testing.T) {
	g := base(t)
	d := FromGraph(g)
	// An unreachable gain gate: once the hot set is packed (which a DBG
	// refresh achieves), every policy-due refresh must be skipped in
	// favor of the cheap relabel, and counted in GainSkips.
	r := NewReorderer(reorder.NewDBG(), graph.OutDegree, Policy{Every: 1, MinRefreshGain: 1e9})
	if _, _, err := r.View(d); err != nil { // forced: never ordered
		t.Fatal(err)
	}
	if r.Refreshes != 1 {
		t.Fatalf("initial forced refresh missing (count %d)", r.Refreshes)
	}
	for i := 0; i < 3; i++ {
		src := graph.VertexID(i % d.NumVertices())
		if err := d.Apply([]Update{{Edge: graph.Edge{Src: src, Dst: 0, Weight: 1}}}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.View(d); err != nil {
			t.Fatal(err)
		}
	}
	if r.Refreshes != 1 {
		t.Errorf("gain gate did not hold: %d refreshes", r.Refreshes)
	}
	if r.GainSkips != 3 || r.Relabels != 3 {
		t.Errorf("gainSkips=%d relabels=%d, want 3/3", r.GainSkips, r.Relabels)
	}

	// A vertex-space change is forced and must bypass the gate.
	d.AddVertices(4)
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: graph.VertexID(d.NumVertices() - 1), Dst: 0, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 2 {
		t.Errorf("vertex-space change did not force a refresh past the gate (count %d)", r.Refreshes)
	}

	// With a permissive gate (any gain >= 1 passes), periodic refreshes
	// resume: scramble the layout via the technique under test being
	// identity-defeating is not needed — gain >= 1 always passes.
	perm := NewReorderer(reorder.NewDBG(), graph.OutDegree, Policy{Every: 1, MinRefreshGain: 1})
	if _, _, err := perm.View(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: 0, Dst: 1, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := perm.View(d); err != nil {
		t.Fatal(err)
	}
	if perm.Refreshes != 2 || perm.GainSkips != 0 {
		t.Errorf("permissive gate: refreshes=%d gainSkips=%d, want 2/0", perm.Refreshes, perm.GainSkips)
	}
}
