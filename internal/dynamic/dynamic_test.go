package dynamic

import (
	"math"
	"testing"

	"graphreorder/internal/apps"
	"graphreorder/internal/gen"
	"graphreorder/internal/graph"
	"graphreorder/internal/reorder"
)

func base(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.MustDataset("lj", gen.Tiny))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromGraphRoundTrip(t *testing.T) {
	g := base(t)
	d := FromGraph(g)
	if d.NumVertices() != g.NumVertices() || d.NumEdges() != g.NumEdges() {
		t.Fatalf("dimensions changed: %d/%d", d.NumVertices(), d.NumEdges())
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap != g {
		t.Error("initial snapshot should be the original graph (cached)")
	}
}

func TestApplyInsertAndRemove(t *testing.T) {
	g := base(t)
	d := FromGraph(g)
	m0 := d.NumEdges()

	// Insert two edges, remove one existing edge.
	victim := g.Edges()[0]
	err := d.Apply([]Update{
		{Edge: graph.Edge{Src: 0, Dst: 1, Weight: 3}},
		{Edge: graph.Edge{Src: 1, Dst: 2, Weight: 4}},
		{Remove: true, Edge: victim},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumEdges() != m0+1 {
		t.Fatalf("edge count %d, want %d", d.NumEdges(), m0+1)
	}
	if d.Batches() != 1 {
		t.Fatalf("batches %d, want 1", d.Batches())
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumEdges() != m0+1 {
		t.Error("snapshot out of sync")
	}
	if err := snap.Validate(); err != nil {
		t.Error(err)
	}
}

func TestApplyRejectsBadUpdates(t *testing.T) {
	d := FromGraph(base(t))
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: 0, Dst: 1 << 30}}}); err == nil {
		t.Error("out-of-range insert accepted")
	}
	if err := d.Apply([]Update{{Remove: true, Edge: graph.Edge{Src: 0, Dst: 0}}}); err == nil {
		// lj generator never emits self-loops, so this edge is absent.
		t.Error("absent-edge removal accepted")
	}
}

func TestAddVertices(t *testing.T) {
	d := FromGraph(base(t))
	n0 := d.NumVertices()
	first := d.AddVertices(10)
	if int(first) != n0 || d.NumVertices() != n0+10 {
		t.Fatalf("AddVertices: first=%d n=%d", first, d.NumVertices())
	}
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: first, Dst: 0, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.OutDegree(first) != 1 {
		t.Error("new vertex's edge missing")
	}
}

func TestReordererRefreshPolicy(t *testing.T) {
	g := base(t)
	d := FromGraph(g)
	r := NewReorderer(reorder.NewDBG(), graph.OutDegree, Policy{Every: 2})

	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 1 {
		t.Fatalf("initial refresh count %d, want 1", r.Refreshes)
	}
	// One batch: policy Every=2 not due, must reuse the stale perm.
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: 1, Dst: 2, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	_, perm1, err := r.View(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 1 {
		t.Errorf("refreshed too early (count %d)", r.Refreshes)
	}
	// Second batch: refresh due.
	if err := d.Apply([]Update{{Edge: graph.Edge{Src: 2, Dst: 3, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	_, perm2, err := r.View(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 2 {
		t.Errorf("refresh not triggered (count %d)", r.Refreshes)
	}
	if err := perm1.Validate(); err != nil {
		t.Error(err)
	}
	if err := perm2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReordererVertexGrowthForcesRefresh(t *testing.T) {
	d := FromGraph(base(t))
	r := NewReorderer(reorder.HubCluster{}, graph.OutDegree, Policy{Every: 1000})
	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	d.AddVertices(5)
	if err := d.Apply(nil); err != nil {
		t.Fatal(err)
	}
	_, perm, err := r.View(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 2 {
		t.Errorf("vertex growth did not force refresh (count %d)", r.Refreshes)
	}
	if len(perm) != d.NumVertices() {
		t.Errorf("perm length %d, want %d", len(perm), d.NumVertices())
	}
}

func TestQueriesAgreeAcrossPolicies(t *testing.T) {
	// PR on the reordered view must equal PR on the raw snapshot no matter
	// how stale the permutation is — relabeling never changes results.
	g := base(t)
	d := FromGraph(g)
	r := NewReorderer(reorder.NewDBG(), graph.OutDegree, Policy{Every: 0}) // never refresh after first
	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	// Mutate heavily: double some hub's in-degree.
	var batch []Update
	for i := 0; i < 200; i++ {
		batch = append(batch, Update{Edge: graph.Edge{
			Src: graph.VertexID(i % d.NumVertices()), Dst: 7, Weight: 1}})
	}
	if err := d.Apply(batch); err != nil {
		t.Fatal(err)
	}
	view, _, err := r.View(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 1 {
		t.Fatalf("policy Every=0 must never refresh again (count %d)", r.Refreshes)
	}
	snap, _ := d.Snapshot()
	if view.NumEdges() != snap.NumEdges() {
		t.Fatalf("view has %d edges, snapshot %d", view.NumEdges(), snap.NumEdges())
	}
	pr1, _, _ := apps.PageRank(snap, 10, 1, nil)
	pr2, _, _ := apps.PageRank(view, 10, 1, nil)
	var s1, s2 float64
	for i := range pr1 {
		s1 += pr1[i]
		s2 += pr2[i]
	}
	if math.Abs(s1-s2) > 1e-9 {
		t.Errorf("rank mass diverged: %v vs %v", s1, s2)
	}
}

func TestStaleOrderingStillPacksMostHubs(t *testing.T) {
	// §VIII-B's premise: after moderate mutation, the hot set barely
	// changes, so the stale DBG ordering still packs most hot vertices
	// into the hot region. Quantify: fraction of currently-hot vertices
	// whose stale new-ID falls in the first third of the ID space.
	g := base(t)
	d := FromGraph(g)
	r := NewReorderer(reorder.NewDBG(), graph.OutDegree, Policy{Every: 0})
	if _, _, err := r.View(d); err != nil {
		t.Fatal(err)
	}
	// Mutate ~5% of edges.
	var batch []Update
	edges := g.Edges()
	for i := 0; i < len(edges)/20; i++ {
		batch = append(batch, Update{Edge: graph.Edge{
			Src: edges[i].Dst, Dst: edges[i].Src, Weight: 1}})
	}
	if err := d.Apply(batch); err != nil {
		t.Fatal(err)
	}
	view, perm, err := r.View(d)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := d.Snapshot()
	avg := snap.AvgDegree()
	hot, packed := 0, 0
	cutoff := graph.VertexID(snap.NumVertices() / 3)
	for v := 0; v < snap.NumVertices(); v++ {
		if float64(snap.OutDegree(graph.VertexID(v))) >= avg {
			hot++
			if perm[v] < cutoff {
				packed++
			}
		}
	}
	if hot == 0 {
		t.Fatal("no hot vertices")
	}
	if frac := float64(packed) / float64(hot); frac < 0.8 {
		t.Errorf("stale ordering packs only %.2f of hot vertices", frac)
	}
	_ = view
}
