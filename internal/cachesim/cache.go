// Package cachesim is a trace-driven cache-hierarchy simulator standing in
// for the hardware performance counters of the paper's evaluation platform
// (a dual-socket Broadwell Xeon). It models:
//
//   - per-core private L1 and L2 caches and a shared, inclusive-enough L3
//     per socket, all set-associative with LRU replacement;
//   - a directory that classifies every L2 miss the way Fig. 9 does:
//     served by the local L3 with no snoop, by a snoop to a core on the
//     same socket, by a snoop to the remote socket, or from memory; and
//   - MPKI accounting (Fig. 8) against an instruction-count model supplied
//     by the trace engine.
//
// Capacities are parameters: the harness scales them with the dataset so
// the hot-footprint-to-LLC ratio matches the paper's regime (§2 of
// DESIGN.md describes the substitution).
package cachesim

import "fmt"

// Level identifies where an access was served.
type Level uint8

const (
	// L1Hit: served by the core's L1.
	L1Hit Level = iota
	// L2Hit: missed L1, served by the core's L2.
	L2Hit
	// L3Hit: missed L2, served by the local socket's L3 without snooping.
	L3Hit
	// SnoopLocal: missed L2, served by another core on the same socket.
	SnoopLocal
	// SnoopRemote: missed L2, served by a cache on the other socket.
	SnoopRemote
	// OffChip: served from memory.
	OffChip
)

// String returns a short label for the level.
func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	case L3Hit:
		return "L3"
	case SnoopLocal:
		return "snoop-local"
	case SnoopRemote:
		return "snoop-remote"
	case OffChip:
		return "off-chip"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// CacheConfig sizes one cache.
type CacheConfig struct {
	SizeBytes int
	Ways      int
}

// Config describes the simulated machine.
type Config struct {
	// Cores is the total core count; must be divisible by Sockets.
	Cores int
	// Sockets is the number of sockets (each with its own shared L3).
	Sockets int
	// LineBytes is the cache line size; 0 means 64.
	LineBytes int
	// L1 and L2 are per-core private caches; L3 is per-socket shared.
	L1, L2, L3 CacheConfig
}

// DefaultConfig returns a scaled-down dual-socket machine: 8 cores on 2
// sockets, 4 KB/8-way L1, 32 KB/8-way L2, and l3PerSocket bytes of 16-way
// L3 per socket. Pass the L3 size chosen for the dataset.
func DefaultConfig(l3PerSocket int) Config {
	return Config{
		Cores:     8,
		Sockets:   2,
		LineBytes: 64,
		L1:        CacheConfig{SizeBytes: 4 << 10, Ways: 8},
		L2:        CacheConfig{SizeBytes: 32 << 10, Ways: 8},
		L3:        CacheConfig{SizeBytes: l3PerSocket, Ways: 16},
	}
}

// validate normalizes and checks a config.
func (c *Config) validate() error {
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.Cores <= 0 || c.Sockets <= 0 || c.Cores%c.Sockets != 0 {
		return fmt.Errorf("cachesim: bad core/socket counts %d/%d", c.Cores, c.Sockets)
	}
	for _, cc := range []CacheConfig{c.L1, c.L2, c.L3} {
		if cc.SizeBytes <= 0 || cc.Ways <= 0 {
			return fmt.Errorf("cachesim: cache with non-positive size or ways: %+v", cc)
		}
		lines := cc.SizeBytes / c.LineBytes
		if lines < cc.Ways || lines%cc.Ways != 0 {
			return fmt.Errorf("cachesim: %d lines not divisible into %d ways", lines, cc.Ways)
		}
	}
	return nil
}

// line is one cache entry. version implements zero-walk invalidation: a
// cached copy is stale (treated as absent) when its version is older than
// the directory's current version for that address.
type line struct {
	tag     uint64
	version uint32
	valid   bool
	dirty   bool
}

// cache is a set-associative LRU cache of line tags.
type cache struct {
	sets    [][]line // each set ordered MRU-first
	setMask uint64
	ways    int
}

func newCache(cc CacheConfig, lineBytes int) *cache {
	numLines := cc.SizeBytes / lineBytes
	numSets := numLines / cc.Ways
	// numSets must be a power of two for mask indexing; round down.
	for numSets&(numSets-1) != 0 {
		numSets &= numSets - 1
	}
	if numSets == 0 {
		numSets = 1
	}
	sets := make([][]line, numSets)
	for i := range sets {
		sets[i] = make([]line, 0, cc.Ways)
	}
	return &cache{sets: sets, setMask: uint64(numSets - 1), ways: cc.Ways}
}

// lookup probes for lineAddr at version curVer; on hit the entry is moved
// to MRU and dirtied if write. Stale-version entries are treated as
// invalid and dropped.
func (c *cache) lookup(lineAddr uint64, curVer uint32, write bool) bool {
	return c.lookupUpgrade(lineAddr, curVer, curVer, write)
}

// lookupUpgrade probes for lineAddr at version curVer and, on hit, bumps
// the entry to newVer — the MESI "upgrade" a writer performs on its own
// shared copy while invalidating everyone else's.
func (c *cache) lookupUpgrade(lineAddr uint64, curVer, newVer uint32, write bool) bool {
	set := c.sets[lineAddr&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			if set[i].version != curVer {
				// Invalidated by a remote write; drop the stale copy.
				set[i].valid = false
				return false
			}
			entry := set[i]
			entry.version = newVer
			if write {
				entry.dirty = true
			}
			copy(set[1:i+1], set[0:i])
			set[0] = entry
			return true
		}
	}
	return false
}

// insert fills lineAddr at version curVer as MRU, evicting LRU if needed.
// Returns the evicted line and whether an eviction happened.
func (c *cache) insert(lineAddr uint64, curVer uint32, write bool) (line, bool) {
	idx := lineAddr & c.setMask
	set := c.sets[idx]
	entry := line{tag: lineAddr, version: curVer, valid: true, dirty: write}
	// Reuse an invalid slot if present.
	for i := range set {
		if !set[i].valid {
			copy(set[1:i+1], set[0:i])
			set[0] = entry
			return line{}, false
		}
	}
	if len(set) < c.ways {
		set = append(set, line{})
		copy(set[1:], set[0:len(set)-1])
		set[0] = entry
		c.sets[idx] = set
		return line{}, false
	}
	evicted := set[len(set)-1]
	copy(set[1:], set[0:len(set)-1])
	set[0] = entry
	return evicted, evicted.valid
}

// contains probes without updating recency (used for directory checks).
func (c *cache) contains(lineAddr uint64, curVer uint32) bool {
	set := c.sets[lineAddr&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr && set[i].version == curVer {
			return true
		}
	}
	return false
}
