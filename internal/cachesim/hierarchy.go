package cachesim

import "fmt"

// dirEntry is the directory's view of one cache line.
type dirEntry struct {
	// holders is a bitmask of cores whose private caches may hold the
	// line at the current version.
	holders uint16
	// version increments on every write, invalidating other copies.
	version uint32
	// lastWriter is the core that produced the current version.
	lastWriter int8
	// dirty marks that the current version has not been written back.
	dirty bool
}

// Stats aggregates simulation counters.
type Stats struct {
	// Instructions is the modeled instruction count (from the tracer).
	Instructions uint64
	// Accesses is the number of memory accesses simulated.
	Accesses uint64
	// L1Misses, L2Misses, L3Misses count misses at each level; an access
	// that snoops or goes off-chip counts as a miss at all three.
	L1Misses, L2Misses, L3Misses uint64
	// Served breaks down where accesses were satisfied (Fig. 9's four
	// categories are Served[L3Hit], Served[SnoopLocal], Served[SnoopRemote]
	// and Served[OffChip], normalized to L2Misses).
	Served [OffChip + 1]uint64
}

// MPKI returns misses-per-kilo-instruction at the given miss level
// (1 = L1, 2 = L2, 3 = L3), the Fig. 8 metric.
func (s Stats) MPKI(level int) float64 {
	if s.Instructions == 0 {
		return 0
	}
	var m uint64
	switch level {
	case 1:
		m = s.L1Misses
	case 2:
		m = s.L2Misses
	case 3:
		m = s.L3Misses
	default:
		return 0
	}
	return float64(m) / float64(s.Instructions) * 1000
}

// L2MissBreakdown returns the Fig. 9 fractions: of all L2 misses, the
// shares served by L3 without snooping, by same-socket snoops, by
// remote-socket snoops, and off-chip. Returns zeros when there were no L2
// misses.
func (s Stats) L2MissBreakdown() (l3Hit, snoopLocal, snoopRemote, offChip float64) {
	total := float64(s.Served[L3Hit] + s.Served[SnoopLocal] + s.Served[SnoopRemote] + s.Served[OffChip])
	if total == 0 {
		return 0, 0, 0, 0
	}
	return float64(s.Served[L3Hit]) / total,
		float64(s.Served[SnoopLocal]) / total,
		float64(s.Served[SnoopRemote]) / total,
		float64(s.Served[OffChip]) / total
}

// Hierarchy simulates the configured machine.
type Hierarchy struct {
	cfg       Config
	lineShift uint
	l1, l2    []*cache // per core
	l3        []*cache // per socket
	dir       map[uint64]*dirEntry
	stats     Stats
}

// New builds a Hierarchy; the config is validated and normalized.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Cores > 16 {
		return nil, fmt.Errorf("cachesim: at most 16 cores supported (directory mask), got %d", cfg.Cores)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	h := &Hierarchy{cfg: cfg, lineShift: shift, dir: make(map[uint64]*dirEntry)}
	for c := 0; c < cfg.Cores; c++ {
		h.l1 = append(h.l1, newCache(cfg.L1, cfg.LineBytes))
		h.l2 = append(h.l2, newCache(cfg.L2, cfg.LineBytes))
	}
	for s := 0; s < cfg.Sockets; s++ {
		h.l3 = append(h.l3, newCache(cfg.L3, cfg.LineBytes))
	}
	return h, nil
}

// Cores returns the simulated core count.
func (h *Hierarchy) Cores() int { return h.cfg.Cores }

func (h *Hierarchy) socketOf(core int) int {
	return core / (h.cfg.Cores / h.cfg.Sockets)
}

// AddInstructions credits modeled instructions to the MPKI denominator.
func (h *Hierarchy) AddInstructions(n uint64) { h.stats.Instructions += n }

// Stats returns a copy of the accumulated counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Access simulates one memory access by core to byte address addr and
// returns where it was served.
func (h *Hierarchy) Access(core int, addr uint64, write bool) Level {
	if core < 0 || core >= h.cfg.Cores {
		panic(fmt.Sprintf("cachesim: core %d out of range", core))
	}
	lineAddr := addr >> h.lineShift
	h.stats.Accesses++

	de := h.dir[lineAddr]
	if de == nil {
		de = &dirEntry{lastWriter: -1}
		h.dir[lineAddr] = de
	}
	oldVer := de.version
	newVer := oldVer
	if write && de.holders&^(1<<uint(core)) != 0 {
		// Other cores may hold copies: invalidate them by bumping the
		// version. The writer's own copy is upgraded in place (MESI
		// shared->modified upgrade), not invalidated.
		newVer = oldVer + 1
	}

	served := h.probe(core, lineAddr, oldVer, newVer, write)
	h.stats.Served[served]++
	if served != L1Hit {
		h.stats.L1Misses++
	}
	if served != L1Hit && served != L2Hit {
		h.stats.L2Misses++
	}
	if served == OffChip || served == SnoopRemote {
		// Remote-socket service implies a local L3 miss. (Fig. 8 counts
		// per-socket L3 misses; an off-chip or cross-socket access missed
		// the local L3.)
		h.stats.L3Misses++
	}

	de.version = newVer
	if write {
		de.holders = 0
		de.lastWriter = int8(core)
		de.dirty = true
	}
	de.holders |= 1 << uint(core)

	if served != L1Hit {
		if served != L2Hit {
			h.fillL2(core, lineAddr, newVer, write)
			h.fillL3(h.socketOf(core), lineAddr, newVer, write)
		}
		h.fillL1(core, lineAddr, newVer, write)
	}
	return served
}

// probe walks the hierarchy and classifies where the access is served.
// Existing copies are at oldVer; the writer's own hits are upgraded to
// newVer in place.
func (h *Hierarchy) probe(core int, lineAddr uint64, oldVer, newVer uint32, write bool) Level {
	if h.l1[core].lookupUpgrade(lineAddr, oldVer, newVer, write) {
		// Keep the L2 copy's version in sync so the inclusive hierarchy
		// does not hold a stale duplicate.
		if newVer != oldVer {
			h.l2[core].lookupUpgrade(lineAddr, oldVer, newVer, write)
		}
		return L1Hit
	}
	if h.l2[core].lookupUpgrade(lineAddr, oldVer, newVer, write) {
		return L2Hit
	}

	// L2 miss: consult the directory for a dirty copy in another core's
	// private cache — that forces a snoop regardless of L3 state.
	de := h.dir[lineAddr]
	mySocket := h.socketOf(core)
	if de != nil && de.dirty && de.lastWriter >= 0 && int(de.lastWriter) != core {
		owner := int(de.lastWriter)
		// The owner's copy must still be live in its private caches.
		if h.l1[owner].contains(lineAddr, oldVer) || h.l2[owner].contains(lineAddr, oldVer) {
			// The snoop forwards the data and writes it back: the owner's
			// copy is downgraded to clean and the owner's L3 receives the
			// current data, so subsequent readers hit in L3.
			de.dirty = false
			h.fillL3(h.socketOf(owner), lineAddr, oldVer, false)
			if h.socketOf(owner) == mySocket {
				return SnoopLocal
			}
			return SnoopRemote
		}
	}
	// Clean (or written-back) data: local L3, then remote L3/off-chip.
	if h.l3[mySocket].lookupUpgrade(lineAddr, oldVer, newVer, write) {
		return L3Hit
	}
	for s := 0; s < h.cfg.Sockets; s++ {
		if s == mySocket {
			continue
		}
		if h.l3[s].contains(lineAddr, oldVer) {
			return SnoopRemote
		}
	}
	return OffChip
}

// fillL1 inserts a line into a core's L1. A dirty victim is written back
// into the same core's L2 (it stays dirty on-chip and remains snoopable).
func (h *Hierarchy) fillL1(core int, lineAddr uint64, ver uint32, write bool) {
	evicted, ok := h.l1[core].insert(lineAddr, ver, write)
	if !ok || !evicted.dirty {
		return
	}
	// Write the victim back to this core's L2, dirtying the copy there
	// (or allocating one if the L2 already lost it).
	if !h.l2[core].lookup(evicted.tag, evicted.version, true) {
		h.fillL2(core, evicted.tag, evicted.version, true)
	}
}

// fillL2 inserts a line into a core's L2. A dirty victim is written back
// to the socket's L3, at which point the directory stops requiring snoops
// for it (the shared L3 copy is current).
func (h *Hierarchy) fillL2(core int, lineAddr uint64, ver uint32, write bool) {
	evicted, ok := h.l2[core].insert(lineAddr, ver, write)
	if !ok || !evicted.dirty {
		return
	}
	h.fillL3(h.socketOf(core), evicted.tag, evicted.version, true)
	if de := h.dir[evicted.tag]; de != nil && de.version == evicted.version {
		de.dirty = false
	}
}

// fillL3 inserts a line into a socket's L3; victims spill to memory, so a
// dirty victim clears the directory's dirty bit (memory is now current).
func (h *Hierarchy) fillL3(socket int, lineAddr uint64, ver uint32, write bool) {
	evicted, ok := h.l3[socket].insert(lineAddr, ver, write)
	if !ok || !evicted.dirty {
		return
	}
	if de := h.dir[evicted.tag]; de != nil && de.version == evicted.version {
		de.dirty = false
	}
}
