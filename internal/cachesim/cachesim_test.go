package cachesim

import (
	"testing"
)

// tinyConfig: 1-2 cores, miniature caches for hand-computed traces.
// L1: 2 sets x 2 ways x 64B = 256B. L2: 4 sets x 2 ways. L3: 8 sets x 2 ways.
func tinyConfig(cores, sockets int) Config {
	return Config{
		Cores:     cores,
		Sockets:   sockets,
		LineBytes: 64,
		L1:        CacheConfig{SizeBytes: 256, Ways: 2},
		L2:        CacheConfig{SizeBytes: 512, Ways: 2},
		L3:        CacheConfig{SizeBytes: 1024, Ways: 2},
	}
}

func mustNew(t *testing.T, cfg Config) *Hierarchy {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Cores: 0, Sockets: 1, L1: CacheConfig{64, 1}, L2: CacheConfig{64, 1}, L3: CacheConfig{64, 1}},
		{Cores: 3, Sockets: 2, L1: CacheConfig{64, 1}, L2: CacheConfig{64, 1}, L3: CacheConfig{64, 1}},
		{Cores: 2, Sockets: 1, L1: CacheConfig{0, 1}, L2: CacheConfig{64, 1}, L3: CacheConfig{64, 1}},
		{Cores: 32, Sockets: 2, L1: CacheConfig{64, 1}, L2: CacheConfig{64, 1}, L3: CacheConfig{64, 1}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(DefaultConfig(256 << 10)); err != nil {
		t.Errorf("DefaultConfig rejected: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := mustNew(t, tinyConfig(1, 1))
	if lv := h.Access(0, 0x1000, false); lv != OffChip {
		t.Errorf("first access served at %v, want OffChip", lv)
	}
	if lv := h.Access(0, 0x1000, false); lv != L1Hit {
		t.Errorf("second access served at %v, want L1Hit", lv)
	}
	// Same line, different byte.
	if lv := h.Access(0, 0x1030, false); lv != L1Hit {
		t.Errorf("same-line access served at %v, want L1Hit", lv)
	}
	st := h.Stats()
	if st.Accesses != 3 || st.L1Misses != 1 || st.L2Misses != 1 || st.L3Misses != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	h := mustNew(t, tinyConfig(1, 1))
	// L1 has 2 sets; lines map to set (lineAddr & 1). Three lines in set 0:
	// 0x0000, 0x0080, 0x0100 (lineAddrs 0, 2, 4 — all even -> set 0).
	h.Access(0, 0x0000, false)
	h.Access(0, 0x0080, false)
	h.Access(0, 0x0100, false) // evicts LRU 0x0000 from L1 (2 ways)
	// 0x0080 was MRU before 0x0100, so it survived the eviction.
	if lv := h.Access(0, 0x0080, false); lv != L1Hit {
		t.Errorf("recently-used line was evicted (served %v)", lv)
	}
	if lv := h.Access(0, 0x0000, false); lv == L1Hit {
		t.Error("evicted line still hit in L1")
	}
}

func TestL2CatchesL1Eviction(t *testing.T) {
	h := mustNew(t, tinyConfig(1, 1))
	h.Access(0, 0x0000, false)
	h.Access(0, 0x0080, false)
	h.Access(0, 0x0100, false) // 0x0000 falls out of L1 but stays in L2
	if lv := h.Access(0, 0x0000, false); lv != L2Hit {
		t.Errorf("served %v, want L2Hit", lv)
	}
}

func TestSharedL3AcrossCoresSameSocket(t *testing.T) {
	h := mustNew(t, tinyConfig(2, 1))
	h.Access(0, 0x2000, false) // core 0 pulls the line on-chip
	if lv := h.Access(1, 0x2000, false); lv != L3Hit {
		t.Errorf("core 1 served at %v, want L3Hit (shared L3, clean line)", lv)
	}
}

func TestDirtySnoopSameSocket(t *testing.T) {
	h := mustNew(t, tinyConfig(2, 1))
	h.Access(0, 0x3000, true) // core 0 writes: dirty in core 0's L1
	if lv := h.Access(1, 0x3000, false); lv != SnoopLocal {
		t.Errorf("core 1 served at %v, want SnoopLocal (dirty in peer)", lv)
	}
}

func TestDirtySnoopRemoteSocket(t *testing.T) {
	h := mustNew(t, tinyConfig(2, 2)) // cores 0,1 on different sockets
	h.Access(0, 0x4000, true)
	if lv := h.Access(1, 0x4000, false); lv != SnoopRemote {
		t.Errorf("served at %v, want SnoopRemote", lv)
	}
}

func TestWriteInvalidatesOtherCopies(t *testing.T) {
	h := mustNew(t, tinyConfig(2, 1))
	h.Access(0, 0x5000, false)
	h.Access(1, 0x5000, false) // both cores now hold the line
	h.Access(1, 0x5000, true)  // core 1 writes: core 0's copy is stale
	if lv := h.Access(0, 0x5000, false); lv == L1Hit || lv == L2Hit {
		t.Errorf("stale copy served from private cache (%v)", lv)
	}
}

func TestCleanRemoteL3Snoop(t *testing.T) {
	h := mustNew(t, tinyConfig(2, 2))
	h.Access(0, 0x6000, false) // clean line in socket 0's L3
	if lv := h.Access(1, 0x6000, false); lv != SnoopRemote {
		t.Errorf("served at %v, want SnoopRemote (line in remote L3)", lv)
	}
	// After the fill, core 1's socket L3 has it too.
	h.Access(1, 0x6040, false) // different line, don't disturb
	if lv := h.Access(1, 0x6000, false); lv != L1Hit {
		t.Errorf("second access served at %v, want L1Hit", lv)
	}
}

func TestDirtyWritebackClearsSnoopNeed(t *testing.T) {
	// Write a line on core 0, then stream enough lines through core 0's
	// private caches to evict it (writing it back). A later read from core
	// 1 must then be served by L3, not a snoop.
	h := mustNew(t, tinyConfig(2, 1))
	h.Access(0, 0x0000, true)
	// Evict from both L1 (2 ways/set) and L2 (2 ways/set): push 4+ lines
	// into the same sets. Set count: L1 2 sets, L2 4 sets. Lines 0x0200,
	// 0x0400, ... map set 0 in both.
	for i := 1; i <= 6; i++ {
		h.Access(0, uint64(i)*0x0200, false)
	}
	lv := h.Access(1, 0x0000, false)
	if lv == SnoopLocal || lv == SnoopRemote {
		t.Errorf("written-back line still snooped (%v)", lv)
	}
}

func TestMPKIAccounting(t *testing.T) {
	h := mustNew(t, tinyConfig(1, 1))
	h.Access(0, 0x0000, false) // all-level miss
	h.Access(0, 0x0000, false) // L1 hit
	h.AddInstructions(1000)
	st := h.Stats()
	if got := st.MPKI(1); got != 1.0 {
		t.Errorf("L1 MPKI = %v, want 1.0", got)
	}
	if got := st.MPKI(3); got != 1.0 {
		t.Errorf("L3 MPKI = %v, want 1.0", got)
	}
	if got := st.MPKI(9); got != 0 {
		t.Errorf("bogus level MPKI = %v, want 0", got)
	}
	var empty Stats
	if empty.MPKI(1) != 0 {
		t.Error("zero-instruction MPKI should be 0")
	}
}

func TestL2MissBreakdownSumsToOne(t *testing.T) {
	h := mustNew(t, tinyConfig(4, 2))
	// Generate a mixed workload.
	for i := 0; i < 200; i++ {
		core := i % 4
		addr := uint64((i * 7919) % 64 * 64)
		h.Access(core, addr, i%3 == 0)
	}
	st := h.Stats()
	a, b, c, d := st.L2MissBreakdown()
	sum := a + b + c + d
	if st.L2Misses > 0 && (sum < 0.999 || sum > 1.001) {
		t.Errorf("breakdown sums to %v", sum)
	}
	var empty Stats
	if a, b, c, d := empty.L2MissBreakdown(); a+b+c+d != 0 {
		t.Error("empty breakdown should be zeros")
	}
}

func TestAccessPanicsOnBadCore(t *testing.T) {
	h := mustNew(t, tinyConfig(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad core")
		}
	}()
	h.Access(5, 0, false)
}

func TestWorkingSetFitsMeansNoSteadyStateMisses(t *testing.T) {
	// A working set smaller than L1 must produce only cold misses.
	h := mustNew(t, tinyConfig(1, 1))
	for pass := 0; pass < 10; pass++ {
		for lineIdx := 0; lineIdx < 4; lineIdx++ {
			// 4 lines: 2 sets x 2 ways fills L1 exactly.
			h.Access(0, uint64(lineIdx)*64, false)
		}
	}
	st := h.Stats()
	if st.L1Misses != 4 {
		t.Errorf("L1 misses = %d, want 4 (cold only)", st.L1Misses)
	}
}

func TestLevelString(t *testing.T) {
	names := map[Level]string{
		L1Hit: "L1", L2Hit: "L2", L3Hit: "L3",
		SnoopLocal: "snoop-local", SnoopRemote: "snoop-remote", OffChip: "off-chip",
	}
	for lv, want := range names {
		if lv.String() != want {
			t.Errorf("%d.String() = %q, want %q", lv, lv.String(), want)
		}
	}
}

func BenchmarkAccess(b *testing.B) {
	h, err := New(DefaultConfig(256 << 10))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(i%8, uint64(i*64%(1<<22)), i%5 == 0)
	}
}
